// Package failures models when, where, and how severely the simulated
// system fails.
//
// Following Section III-E of the paper, a failure has three independent
// random attributes:
//
//   - time: failures form a Poisson process whose rate is the number of
//     non-idle nodes divided by the per-node MTBF (Eq. 2);
//   - location: the failed node is uniform over the active nodes, so by
//     Poisson thinning each application experiences an independent Poisson
//     failure process with rate N_a / M_n;
//   - severity: a three-level discrete distribution consumed by multilevel
//     checkpointing to decide which checkpoint level a recovery needs.
//
// The paper takes its severity ratios from the BlueGene/L failure-log
// analysis used by Moody et al.; those logs are not published alongside the
// paper, so this package defaults to (0.65, 0.25, 0.10) — preserving the
// property every multilevel-checkpointing study relies on, that the large
// majority of failures are recoverable at the cheapest level — and exposes
// the distribution as configuration.
package failures

import (
	"fmt"

	"exaresil/internal/rng"
	"exaresil/internal/units"
)

// Severity classifies how much of the checkpoint hierarchy a failure
// destroys. Higher severities require restoring from slower, more durable
// checkpoint levels.
type Severity int

// The three severity levels of the Moody et al. model.
const (
	// SeverityTransient (level 1) leaves node memory intact: a local RAM
	// checkpoint suffices for recovery (e.g. a software error).
	SeverityTransient Severity = 1
	// SeverityNodeLoss (level 2) destroys the failed node's memory: the
	// partner-node checkpoint copy is required.
	SeverityNodeLoss Severity = 2
	// SeverityCatastrophic (level 3) takes out the node and its partner
	// (e.g. correlated hardware faults): only the parallel file system
	// checkpoint survives.
	SeverityCatastrophic Severity = 3
)

// NumSeverities is the number of severity levels.
const NumSeverities = 3

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SeverityTransient:
		return "transient"
	case SeverityNodeLoss:
		return "node-loss"
	case SeverityCatastrophic:
		return "catastrophic"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// SeverityPMF is the probability of each severity level, indexed by
// level-1. It is the lambda_Lj / lambda_Lt ratio vector of Section III-E.
type SeverityPMF [NumSeverities]float64

// DefaultSeverityPMF returns the repository's stand-in for the BlueGene/L
// level ratios (see the package comment and DESIGN.md §5).
func DefaultSeverityPMF() SeverityPMF { return SeverityPMF{0.65, 0.25, 0.10} }

// Validate reports whether the PMF is a usable distribution (non-negative,
// positive total; it tolerates unnormalized weights).
func (p SeverityPMF) Validate() error {
	total := 0.0
	for i, w := range p {
		if w < 0 {
			return fmt.Errorf("failures: severity weight %d is negative (%v)", i+1, w)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("failures: severity weights sum to zero")
	}
	return nil
}

// Failure is one failure occurrence.
type Failure struct {
	// Time is when the failure strikes.
	Time units.Duration
	// Node is the index of the failed node within the affected scope
	// (application-local for Process, machine-global for SystemProcess).
	Node int
	// Severity is the failure's severity level.
	Severity Severity
}

// String renders the failure for traces.
func (f Failure) String() string {
	return fmt.Sprintf("failure@%s node=%d sev=%s", f.Time, f.Node, f.Severity)
}

// Model bundles the reliability parameters shared by all failure processes
// of a study.
type Model struct {
	mtbf       units.Duration
	severities *rng.Discrete
	pmf        SeverityPMF
	shape      float64 // Weibull inter-arrival shape; 1 = exponential
}

// NewModel constructs a failure model from a per-node MTBF and a severity
// distribution, with exponentially distributed inter-arrival times (the
// Poisson process of Section III-E).
func NewModel(mtbf units.Duration, pmf SeverityPMF) (*Model, error) {
	return NewWeibullModel(mtbf, pmf, 1)
}

// NewWeibullModel is NewModel with Weibull-distributed inter-arrival times
// of the given shape, keeping the same mean (the MTBF). Shape 1 is the
// exponential case; shapes below 1 reproduce the decreasing hazard rates
// several HPC failure-log studies report, and are used by the sensitivity
// study to test how much the Poisson assumption matters.
//
// Note that only the exponential case makes per-application processes an
// exact thinning of the system process; for other shapes the per-app
// process is a renewal process with the same marginal inter-arrival
// distribution, a standard approximation.
func NewWeibullModel(mtbf units.Duration, pmf SeverityPMF, shape float64) (*Model, error) {
	if mtbf <= 0 {
		return nil, fmt.Errorf("failures: MTBF %v must be positive", mtbf)
	}
	if err := pmf.Validate(); err != nil {
		return nil, err
	}
	if shape <= 0 {
		return nil, fmt.Errorf("failures: Weibull shape %v must be positive", shape)
	}
	d, err := rng.NewDiscrete(pmf[:])
	if err != nil {
		return nil, err
	}
	return &Model{mtbf: mtbf, severities: d, pmf: pmf, shape: shape}, nil
}

// Shape reports the inter-arrival Weibull shape (1 for exponential).
func (m *Model) Shape() float64 { return m.shape }

// MustModel is NewModel but panics on error; for constant parameters.
func MustModel(mtbf units.Duration, pmf SeverityPMF) *Model {
	m, err := NewModel(mtbf, pmf)
	if err != nil {
		panic(err)
	}
	return m
}

// MTBF reports the per-node mean time between failures M_n.
func (m *Model) MTBF() units.Duration { return m.mtbf }

// WithMTBF derives a model with a different per-node MTBF and the same
// severity distribution and inter-arrival shape. Heterogeneous fleets
// use it to give each node class its own reliability while sharing the
// study's severity assumptions (machine.NodeClass.MTBF feeds this).
func (m *Model) WithMTBF(mtbf units.Duration) (*Model, error) {
	return NewWeibullModel(mtbf, m.pmf, m.shape)
}

// PMF reports the severity distribution.
func (m *Model) PMF() SeverityPMF { return m.pmf }

// Rate reports the aggregate Poisson failure rate of a population of nodes
// (lambda_a = N_a / M_n for an application, Eq. 2 for a whole system).
func (m *Model) Rate(nodes int) units.Rate {
	if nodes <= 0 {
		return 0
	}
	return units.Rate(float64(nodes) / float64(m.mtbf))
}

// SeverityRate reports the arrival rate of failures at severity s or worse
// for a population of nodes. Multilevel checkpoint interval optimization
// uses these partial rates.
func (m *Model) SeverityRate(nodes int, atLeast Severity) units.Rate {
	total := 0.0
	for _, w := range m.pmf {
		total += w
	}
	mass := 0.0
	for i := int(atLeast) - 1; i < NumSeverities; i++ {
		mass += m.pmf[i]
	}
	return units.Rate(float64(m.Rate(nodes)) * mass / total)
}

// Process generates the failure sequence experienced by a fixed population
// of nodes (typically one application's allocation). It is a Poisson
// process with rate nodes/MTBF; successive calls to Next return
// strictly increasing times. A Process is not safe for concurrent use.
type Process struct {
	model *Model
	nodes int
	rate  float64 // per minute; zero disables the process
	src   *rng.Source
	last  units.Duration
}

// Process creates a failure process over the given node population, drawing
// randomness from src. A non-positive population yields a process that
// never fires.
func (m *Model) Process(nodes int, src *rng.Source) *Process {
	rate := 0.0
	if nodes > 0 {
		rate = float64(m.Rate(nodes))
	}
	return &Process{model: m, nodes: nodes, rate: rate, src: src}
}

// Reinit re-arms an existing process in place over a (possibly different)
// model, population, and source, clearing the process clock. It is exactly
// equivalent to replacing the process with m.Process(nodes, src), without
// the allocation: the resilience engine reuses one Process across the
// thousands of sequential runs of a study.
func (p *Process) Reinit(m *Model, nodes int, src *rng.Source) {
	rate := 0.0
	if nodes > 0 {
		rate = float64(m.Rate(nodes))
	}
	*p = Process{model: m, nodes: nodes, rate: rate, src: src}
}

// Nodes reports the population size the process covers.
func (p *Process) Nodes() int { return p.nodes }

// Rate reports the process's failure rate.
func (p *Process) Rate() units.Rate { return units.Rate(p.rate) }

// Next returns the next failure, advancing the process. The second return
// is false when the process can never fire (empty population).
func (p *Process) Next() (Failure, bool) {
	if p.rate <= 0 {
		return Failure{}, false
	}
	if p.model.shape == 1 {
		p.last += units.Duration(p.src.Exp(p.rate))
	} else {
		scale := rng.WeibullScaleForMean(p.model.shape, 1/p.rate)
		p.last += units.Duration(p.src.Weibull(p.model.shape, scale))
	}
	return Failure{
		Time:     p.last,
		Node:     p.src.Intn(p.nodes),
		Severity: p.model.sampleSeverity(p.src),
	}, true
}

// Skip advances the process clock to at least t without emitting failures;
// used when an application is idle (not occupying nodes) so failures
// cannot strike it. Because the exponential distribution is memoryless,
// restarting the clock at t preserves the process statistics.
func (p *Process) Skip(t units.Duration) {
	if t > p.last {
		p.last = t
	}
}

func (m *Model) sampleSeverity(src *rng.Source) Severity {
	return Severity(m.severities.Sample(src) + 1)
}

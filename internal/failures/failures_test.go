package failures

import (
	"math"
	"testing"
	"testing/quick"

	"exaresil/internal/rng"
	"exaresil/internal/units"
)

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(0, DefaultSeverityPMF()); err == nil {
		t.Error("zero MTBF accepted")
	}
	if _, err := NewModel(-units.Year, DefaultSeverityPMF()); err == nil {
		t.Error("negative MTBF accepted")
	}
	if _, err := NewModel(units.Year, SeverityPMF{0, 0, 0}); err == nil {
		t.Error("zero PMF accepted")
	}
	if _, err := NewModel(units.Year, SeverityPMF{1, -1, 0}); err == nil {
		t.Error("negative PMF weight accepted")
	}
	if _, err := NewModel(10*units.Year, DefaultSeverityPMF()); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestRateMatchesEq2(t *testing.T) {
	m := MustModel(10*units.Year, DefaultSeverityPMF())
	// lambda_a = N_a / M_n.
	got := m.Rate(30000).PerMinute()
	want := 30000.0 / (10 * 525600)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("rate = %v, want %v", got, want)
	}
	if m.Rate(0) != 0 || m.Rate(-1) != 0 {
		t.Error("empty population should have zero rate")
	}
}

func TestSeverityRate(t *testing.T) {
	m := MustModel(10*units.Year, SeverityPMF{0.65, 0.25, 0.10})
	full := float64(m.Rate(1000))
	cases := []struct {
		atLeast Severity
		frac    float64
	}{
		{SeverityTransient, 1.0},
		{SeverityNodeLoss, 0.35},
		{SeverityCatastrophic, 0.10},
	}
	for _, tc := range cases {
		got := float64(m.SeverityRate(1000, tc.atLeast))
		if math.Abs(got-full*tc.frac) > 1e-15 {
			t.Errorf("SeverityRate(>=%v) = %v, want %v", tc.atLeast, got, full*tc.frac)
		}
	}
}

func TestProcessInterarrivalMean(t *testing.T) {
	m := MustModel(10*units.Year, DefaultSeverityPMF())
	const nodes = 120000
	p := m.Process(nodes, rng.New(1))
	// Expect ~43.8 min between failures at full machine (see paper's
	// "failures up to several times an hour" at exascale).
	const n = 20000
	var last units.Duration
	for i := 0; i < n; i++ {
		f, ok := p.Next()
		if !ok {
			t.Fatal("process refused to fire")
		}
		if f.Time <= last {
			t.Fatalf("failure times not strictly increasing: %v after %v", f.Time, last)
		}
		last = f.Time
	}
	mean := last.Minutes() / n
	want := (10.0 * 525600) / nodes
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("mean interarrival %v min, want ~%v", mean, want)
	}
}

func TestProcessNodesUniform(t *testing.T) {
	m := MustModel(units.Year, DefaultSeverityPMF())
	const nodes = 10
	p := m.Process(nodes, rng.New(2))
	counts := make([]int, nodes)
	const n = 50000
	for i := 0; i < n; i++ {
		f, _ := p.Next()
		if f.Node < 0 || f.Node >= nodes {
			t.Fatalf("node %d out of range", f.Node)
		}
		counts[f.Node]++
	}
	want := float64(n) / nodes
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("node %d hit %d times, want ~%v", i, c, want)
		}
	}
}

func TestProcessSeverityFrequencies(t *testing.T) {
	pmf := SeverityPMF{0.65, 0.25, 0.10}
	m := MustModel(units.Year, pmf)
	p := m.Process(100, rng.New(3))
	counts := map[Severity]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		f, _ := p.Next()
		counts[f.Severity]++
	}
	for i, w := range pmf {
		sev := Severity(i + 1)
		got := float64(counts[sev]) / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("severity %v frequency %v, want ~%v", sev, got, w)
		}
	}
}

func TestEmptyProcessNeverFires(t *testing.T) {
	m := MustModel(units.Year, DefaultSeverityPMF())
	p := m.Process(0, rng.New(4))
	if _, ok := p.Next(); ok {
		t.Error("empty process fired")
	}
	if p.Rate() != 0 {
		t.Error("empty process has nonzero rate")
	}
}

func TestSkip(t *testing.T) {
	m := MustModel(units.Year, DefaultSeverityPMF())
	p := m.Process(1000, rng.New(5))
	p.Skip(500)
	f, _ := p.Next()
	if f.Time <= 500 {
		t.Errorf("failure at %v despite skip to 500", f.Time)
	}
	// Skipping backwards is a no-op.
	p.Skip(0)
	g, _ := p.Next()
	if g.Time <= f.Time {
		t.Error("backwards skip rewound the process")
	}
}

func TestSeverityStrings(t *testing.T) {
	for sev, want := range map[Severity]string{
		SeverityTransient:    "transient",
		SeverityNodeLoss:     "node-loss",
		SeverityCatastrophic: "catastrophic",
	} {
		if sev.String() != want {
			t.Errorf("Severity(%d).String() = %q, want %q", sev, sev.String(), want)
		}
	}
	if Severity(9).String() != "Severity(9)" {
		t.Error("unknown severity string")
	}
}

func TestDeterminism(t *testing.T) {
	m := MustModel(10*units.Year, DefaultSeverityPMF())
	a := m.Process(5000, rng.New(42))
	b := m.Process(5000, rng.New(42))
	for i := 0; i < 1000; i++ {
		fa, _ := a.Next()
		fb, _ := b.Next()
		if fa != fb {
			t.Fatalf("processes diverged at %d: %v vs %v", i, fa, fb)
		}
	}
}

// TestThinningConsistency verifies the thinning identity the cluster
// simulator relies on: a population of n nodes observed through a model
// with MTBF M has the same rate as a 1-node population with MTBF M/n.
func TestThinningConsistency(t *testing.T) {
	prop := func(nRaw uint16, yearsRaw uint8) bool {
		n := int(nRaw%10000) + 1
		years := units.Duration(yearsRaw%20+1) * units.Year
		whole := MustModel(years, DefaultSeverityPMF()).Rate(n)
		scaled := MustModel(years/units.Duration(n), DefaultSeverityPMF()).Rate(1)
		return math.Abs(float64(whole)-float64(scaled)) < 1e-12*math.Max(1, float64(whole))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkProcessNext(b *testing.B) {
	m := MustModel(10*units.Year, DefaultSeverityPMF())
	p := m.Process(120000, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Next()
	}
}

func TestWeibullModelMeanPreserved(t *testing.T) {
	m, err := NewWeibullModel(10*units.Year, DefaultSeverityPMF(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shape() != 0.7 {
		t.Errorf("shape %v", m.Shape())
	}
	p := m.Process(120000, rng.New(8))
	const n = 30000
	var last units.Duration
	for i := 0; i < n; i++ {
		f, ok := p.Next()
		if !ok {
			t.Fatal("process refused to fire")
		}
		if f.Time <= last {
			t.Fatal("times not increasing")
		}
		last = f.Time
	}
	mean := last.Minutes() / n
	want := (10.0 * 525600) / 120000
	if math.Abs(mean-want) > 0.1*want {
		t.Errorf("Weibull process mean interarrival %v, want ~%v", mean, want)
	}
}

func TestWeibullModelBurstier(t *testing.T) {
	// Shape < 1 should produce more variable gaps than exponential:
	// compare coefficient of variation.
	cv := func(shape float64) float64 {
		m, err := NewWeibullModel(units.Year, DefaultSeverityPMF(), shape)
		if err != nil {
			t.Fatal(err)
		}
		p := m.Process(1000, rng.New(9))
		var gaps []float64
		var last units.Duration
		for i := 0; i < 20000; i++ {
			f, _ := p.Next()
			gaps = append(gaps, (f.Time - last).Minutes())
			last = f.Time
		}
		var mean, m2 float64
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		for _, g := range gaps {
			m2 += (g - mean) * (g - mean)
		}
		return math.Sqrt(m2/float64(len(gaps))) / mean
	}
	if burst, exp := cv(0.6), cv(1.0); burst <= exp {
		t.Errorf("Weibull(0.6) CV %v should exceed exponential CV %v", burst, exp)
	}
}

func TestWeibullModelValidation(t *testing.T) {
	if _, err := NewWeibullModel(units.Year, DefaultSeverityPMF(), 0); err == nil {
		t.Error("zero shape accepted")
	}
	if _, err := NewWeibullModel(units.Year, DefaultSeverityPMF(), -2); err == nil {
		t.Error("negative shape accepted")
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams from equal seeds diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams from different seeds collided %d/100 times", same)
	}
}

func TestStreamIndependentOfOrder(t *testing.T) {
	// Stream(seed, i) must not depend on any other stream having been drawn.
	want := Stream(7, 3).Uint64()
	_ = Stream(7, 0).Uint64()
	_ = Stream(7, 1).Uint64()
	if got := Stream(7, 3).Uint64(); got != want {
		t.Errorf("Stream(7,3) changed after other streams drawn: %d != %d", got, want)
	}
}

func TestStreamsPairwiseDistinct(t *testing.T) {
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 200; i++ {
		v := Stream(99, i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d start identically", i, j)
		}
		seen[v] = i
	}
}

func TestFork(t *testing.T) {
	parent := New(5)
	child := parent.Fork()
	if parent.Uint64() == child.Uint64() {
		t.Error("fork should not mirror parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestUniformBounds(t *testing.T) {
	r := New(13)
	prop := func(a, b float64) bool {
		lo, hi := a, b
		if hi < lo {
			lo, hi = hi, lo
		}
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) ||
			math.IsInf(hi-lo, 0) {
			// The interval width itself overflows float64; the simulator
			// never samples such ranges.
			return true
		}
		v := r.Uniform(lo, hi)
		return v >= lo && (v < hi || lo == hi && v == lo)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(14)
	const n, draws = 7, 140000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn bucket %d: %d draws, want ~%v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(15)
	const rate, n = 0.25, 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.05*(1/rate) {
		t.Errorf("Exp mean %v, want ~%v", mean, 1/rate)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) should panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(16)
	for n := 0; n < 50; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(17)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(18)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(p) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-p) > 0.01 {
		t.Errorf("Bool(%v) hit fraction %v", p, frac)
	}
}

func TestDiscreteErrors(t *testing.T) {
	cases := map[string][]float64{
		"empty":    {},
		"zero":     {0, 0},
		"negative": {1, -1},
		"nan":      {1, math.NaN()},
		"inf":      {1, math.Inf(1)},
	}
	for name, w := range cases {
		if _, err := NewDiscrete(w); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDiscreteSingleOutcome(t *testing.T) {
	d := MustDiscrete([]float64{3})
	r := New(19)
	for i := 0; i < 100; i++ {
		if d.Sample(r) != 0 {
			t.Fatal("single-outcome sampler returned nonzero")
		}
	}
}

func TestDiscreteFrequencies(t *testing.T) {
	weights := []float64{0.65, 0.25, 0.10}
	d := MustDiscrete(weights)
	r := New(20)
	const n = 300000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("outcome %d frequency %v, want ~%v", i, got, w)
		}
	}
}

func TestDiscreteZeroWeightNeverSampled(t *testing.T) {
	d := MustDiscrete([]float64{1, 0, 1})
	r := New(21)
	for i := 0; i < 50000; i++ {
		if d.Sample(r) == 1 {
			t.Fatal("sampled an outcome with zero weight")
		}
	}
}

// TestDiscreteProbReconstruction checks the alias table re-derives the
// normalized input distribution for arbitrary weight vectors.
func TestDiscreteProbReconstruction(t *testing.T) {
	prop := func(raw [6]uint8) bool {
		weights := make([]float64, 0, len(raw))
		var total float64
		for _, w := range raw {
			weights = append(weights, float64(w))
			total += float64(w)
		}
		if total == 0 {
			return true
		}
		d := MustDiscrete(weights)
		for i, w := range weights {
			if math.Abs(d.Prob(i)-w/total) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(0.01)
	}
}

func BenchmarkDiscreteSample(b *testing.B) {
	d := MustDiscrete([]float64{0.65, 0.25, 0.10})
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(r)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	// At shape 1 the Weibull reduces to Exp(1/scale): compare means and a
	// tail quantile.
	r := New(30)
	const scale, n = 40.0, 100000
	var sum float64
	tail := 0
	for i := 0; i < n; i++ {
		v := r.Weibull(1, scale)
		if v < 0 {
			t.Fatalf("negative Weibull sample %v", v)
		}
		sum += v
		if v > 3*scale {
			tail++
		}
	}
	if mean := sum / n; math.Abs(mean-scale) > 0.02*scale {
		t.Errorf("Weibull(1, %v) mean %v", scale, mean)
	}
	// P(X > 3*scale) = e^-3 ~ 0.0498.
	if frac := float64(tail) / n; math.Abs(frac-0.0498) > 0.005 {
		t.Errorf("tail fraction %v, want ~0.0498", frac)
	}
}

func TestWeibullScaleForMean(t *testing.T) {
	r := New(31)
	for _, shape := range []float64{0.5, 0.7, 1, 2} {
		scale := WeibullScaleForMean(shape, 100)
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			sum += r.Weibull(shape, scale)
		}
		if mean := sum / n; math.Abs(mean-100) > 3 {
			t.Errorf("shape %v: mean %v, want ~100", shape, mean)
		}
	}
}

func TestWeibullPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero shape":  func() { New(1).Weibull(0, 1) },
		"zero scale":  func() { New(1).Weibull(1, 0) },
		"scale mean0": func() { WeibullScaleForMean(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

package rng

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

// TestSubStreamMatchesStreamFamily pins the documented compatibility: a
// cell is a numbered family of ordinary streams keyed by CellSeed.
func TestSubStreamMatchesStreamFamily(t *testing.T) {
	for cell := uint64(0); cell < 5; cell++ {
		for trial := uint64(0); trial < 5; trial++ {
			a := SubStream(99, cell, trial)
			b := Stream(CellSeed(99, cell), trial)
			for i := 0; i < 100; i++ {
				if a.Uint64() != b.Uint64() {
					t.Fatalf("SubStream(99,%d,%d) != Stream(CellSeed, %d) at draw %d", cell, trial, trial, i)
				}
			}
		}
	}
}

// TestSetStreamMatchesStream pins that in-place re-seeding reproduces the
// allocating constructors bit for bit.
func TestSetStreamMatchesStream(t *testing.T) {
	var src Source
	for i := uint64(0); i < 10; i++ {
		src.SetStream(42, i)
		fresh := Stream(42, i)
		for d := 0; d < 50; d++ {
			if got, want := src.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("SetStream(42,%d) draw %d: %d != Stream's %d", i, d, got, want)
			}
		}
		src.SetSubStream(42, 7, i)
		fresh = SubStream(42, 7, i)
		for d := 0; d < 50; d++ {
			if got, want := src.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("SetSubStream(42,7,%d) draw %d: %d != SubStream's %d", i, d, got, want)
			}
		}
	}
}

// TestSeedMatchesNew pins that Seed leaves the Source in New's state and
// clears mirroring.
func TestSeedMatchesNew(t *testing.T) {
	var src Source
	src.SetMirror(true)
	src.Seed(123)
	if src.Mirrored() {
		t.Fatal("Seed did not clear the mirror flag")
	}
	fresh := New(123)
	for d := 0; d < 100; d++ {
		if got, want := src.Uint64(), fresh.Uint64(); got != want {
			t.Fatalf("Seed(123) draw %d: %d != New's %d", d, got, want)
		}
	}
}

// TestSubSeedDeterministicAcrossGoroutines derives the same substream table
// from many goroutines under an inflated GOMAXPROCS and requires every
// worker to agree: the derivation must be pure, with no hidden shared
// state, so parallel trial runners are bit-identical to serial ones.
func TestSubSeedDeterministicAcrossGoroutines(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	const cells, trials = 16, 16
	var want [cells][trials]uint64
	for c := range want {
		for tr := range want[c] {
			want[c][tr] = SubSeed(20170529, uint64(c), uint64(tr))
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < cells; c++ {
				for tr := 0; tr < trials; tr++ {
					if got := SubSeed(20170529, uint64(c), uint64(tr)); got != want[c][tr] {
						select {
						case errs <- "SubSeed diverged across goroutines":
						default:
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestSubStreamCellIndependence checks that neighbouring cells' streams are
// uncorrelated: over many (cell, cell+1) pairs the sample correlation of
// their uniform draws must be small, and no two cells in a block may share
// a seed.
func TestSubStreamCellIndependence(t *testing.T) {
	const cells = 64
	seen := make(map[uint64]uint64, cells)
	for c := uint64(0); c < cells; c++ {
		s := SubSeed(1, c, 0)
		if prev, dup := seen[s]; dup {
			t.Fatalf("cells %d and %d derived the same trial-0 seed", prev, c)
		}
		seen[s] = c
	}

	const draws = 4096
	var sx, sy, sxx, syy, sxy float64
	for c := uint64(0); c < cells-1; c++ {
		a, b := SubStream(1, c, 0), SubStream(1, c+1, 0)
		for i := 0; i < draws/cells; i++ {
			x, y := a.Float64(), b.Float64()
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
		}
	}
	n := float64((cells - 1) * (draws / cells))
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if r := cov / math.Sqrt(vx*vy); math.Abs(r) > 0.05 {
		t.Errorf("adjacent-cell correlation |r|=%v exceeds 0.05", math.Abs(r))
	}
}

// TestAntitheticPairSymmetry is the U + U' property test: a mirrored twin
// of any substream must produce exactly 1 - 2^-53 - U for every draw, and
// both members of the pair must consume generator state in lockstep.
func TestAntitheticPairSymmetry(t *testing.T) {
	const sum = 1 - 1.0/(1<<53) // U + U' on the 53-bit dyadic grid
	f := func(seed, cell, trial uint64) bool {
		plain := SubStream(seed, cell, trial)
		twin := SubStream(seed, cell, trial)
		twin.SetMirror(true)
		for i := 0; i < 64; i++ {
			u, v := plain.Float64(), twin.Float64()
			if u+v != sum {
				return false
			}
		}
		// After identical draw counts the raw streams must still agree:
		// mirroring reflects outputs without consuming extra state.
		return plain.Uint64() == twin.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMirroredExpFinite drives the mirrored edge of the uniform grid
// through Exp: the reflection maps U=0 to the grid's top point just below
// 1, so log(1-U') must stay finite for every draw.
func TestMirroredExpFinite(t *testing.T) {
	src := SubStream(5, 0, 0)
	src.SetMirror(true)
	for i := 0; i < 100000; i++ {
		x := src.Exp(1.0 / 3600)
		if math.IsInf(x, 0) || math.IsNaN(x) || x < 0 {
			t.Fatalf("mirrored Exp draw %d produced %v", i, x)
		}
	}
}

// TestMirrorLeavesRawBitsAlone pins that mirroring never touches the raw
// bit stream (and therefore Perm/Shuffle): a mirrored twin consumes and
// produces the identical Uint64 sequence.
func TestMirrorLeavesRawBitsAlone(t *testing.T) {
	a, b := New(9), New(9)
	b.SetMirror(true)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("mirroring changed the raw bit stream at draw %d", i)
		}
	}
}

// TestMirroredIntnReflects pins the antithetic reflection i -> n-1-i and
// the lockstep property: mirrored and plain twins consume identical
// generator state even through Intn's rejection loop.
func TestMirroredIntnReflects(t *testing.T) {
	a, b := New(11), New(11)
	b.SetMirror(true)
	for i := 0; i < 1000; i++ {
		n := 1 + i%7
		if got, want := b.Intn(n), n-1-a.Intn(n); got != want {
			t.Fatalf("draw %d (n=%d): mirrored Intn = %d, want reflection %d", i, n, got, want)
		}
	}
	// After interleaved Intn traffic the raw streams must still agree.
	if a.Uint64() != b.Uint64() {
		t.Fatal("mirrored Intn desynchronized the twins")
	}
}

// BenchmarkSetSubStream guards the zero-allocation contract of in-place
// re-seeding: trial loops reuse one Source across thousands of substreams.
func BenchmarkSetSubStream(b *testing.B) {
	var src Source
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.SetSubStream(20170529, uint64(i%64), uint64(i))
		_ = src.Float64()
	}
}

package rng

import (
	"fmt"
	"math"
)

// Weibull returns a Weibull-distributed value with the given shape k and
// scale lambda, by inverse-CDF sampling:
//
//	X = lambda * (-ln(1-U))^(1/k).
//
// Shape k = 1 reduces to the exponential distribution with rate 1/lambda;
// k < 1 produces the decreasing hazard rate (infant mortality) that
// several HPC failure-log studies report. It panics for non-positive
// parameters.
func (r *Source) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("rng: Weibull called with shape=%v scale=%v", shape, scale))
	}
	return scale * math.Pow(-math.Log(1-r.Float64()), 1/shape)
}

// WeibullScaleForMean returns the scale parameter that gives a Weibull
// distribution of the given shape the desired mean, via
// mean = scale * Gamma(1 + 1/shape). It panics for non-positive inputs.
func WeibullScaleForMean(shape, mean float64) float64 {
	if shape <= 0 || mean <= 0 {
		panic(fmt.Sprintf("rng: WeibullScaleForMean(shape=%v, mean=%v)", shape, mean))
	}
	return mean / math.Gamma(1+1/shape)
}

// Package rng provides the simulator's deterministic pseudo-random number
// generation.
//
// Reproducibility is a hard requirement for the studies in this repository:
// a figure regenerated with the same seed must produce bit-identical rows.
// The standard library's global generator is unsuitable because any package
// may consume from it; instead every simulation component owns an explicit
// *Source, and parallel trials derive independent substreams from a parent
// seed so results do not depend on goroutine scheduling.
//
// The core generator is xoshiro256**, seeded through splitmix64, the
// combination recommended by its authors for general-purpose simulation.
package rng

import (
	"fmt"
	"math"
	"math/bits"
)

// Source is a deterministic stream of pseudo-random numbers. It is not safe
// for concurrent use; give each goroutine its own Source via Fork or Stream.
type Source struct {
	s [4]uint64
	// mirror antithetically reflects the uniform draws (Float64 returns
	// 1-U instead of U); see SetMirror in substream.go.
	mirror bool
}

// splitmix64 advances a 64-bit state and returns the next output. It is
// used only to expand seeds into xoshiro256** state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield streams that
// are, for simulation purposes, statistically independent.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// xoshiro256** must not start at the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if src.s == [4]uint64{} {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Fork returns a new Source whose stream is independent of r's future
// output. It consumes one value from r.
func (r *Source) Fork() *Source {
	return New(r.Uint64())
}

// Stream returns the i-th numbered substream of a source seeded with seed.
// Unlike Fork it is stateless with respect to the parent: Stream(seed, i)
// always denotes the same stream, which lets parallel trial runners hand
// trial i its own generator regardless of execution order.
func Stream(seed uint64, i uint64) *Source {
	sm := seed ^ (0xa3c59ac2b54d4d69 * (i + 1))
	return New(splitmix64(&sm))
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	u := r.Uint64() >> 11
	if r.mirror {
		// Antithetic reflection on the dyadic grid: U' = (2^53-1-u)/2^53,
		// so U + U' == 1 - 2^-53 exactly and U' stays inside [0, 1),
		// keeping Exp's log argument finite.
		u = 1<<53 - 1 - u
	}
	return float64(u) / (1 << 53)
}

// Uniform returns a uniformly distributed value in [lo, hi). It panics if
// hi < lo.
func (r *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("rng: inverted uniform bounds [%v, %v)", lo, hi))
	}
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Lemire's multiply-shift rejection method avoids modulo bias.
//
// A mirrored source (SetMirror) reflects the result to n-1-i. Reflection
// is a bijection on [0, n), so the marginal distribution is unchanged,
// but a draw over an ordered population (ascending application sizes,
// baseline durations) becomes antithetic to its twin's — the mechanism
// that lets paired cluster studies anti-correlate their workload
// composition. The rejection loop consumes raw Uint64 values identically
// either way, so mirrored and plain twins stay in lockstep.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	bound := uint64(n)
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= bound || lo >= (-bound)%bound {
			i := int(hi)
			if r.mirror {
				i = n - 1 - i
			}
			return i
		}
	}
}

// Exp returns an exponentially distributed value with the given rate
// (events per unit time); its mean is 1/rate. It panics for non-positive
// rates.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("rng: Exp called with rate=%v", rate))
	}
	// Inverse-CDF sampling; 1-Float64() is in (0,1], keeping Log finite.
	return -math.Log(1-r.Float64()) / rate
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a pseudo-random permutation of [0, len(p)),
// consuming exactly the draws Perm(len(p)) would; hot loops reuse one
// buffer instead of allocating a permutation per call.
func (r *Source) PermInto(p []int) {
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function, as in the standard library.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Bool returns true with probability p. Probabilities outside [0,1] clamp.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

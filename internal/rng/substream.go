package rng

// This file implements the variance-reduction substream machinery of the
// second raw-speed pass (DESIGN.md §11): numbered per-(cell, trial)
// substreams derived purely from a spec-keyed seed, in-place re-seeding so
// trial loops reuse one Source with zero allocations, and antithetic
// mirroring (U -> 1-U) for paired trials.
//
// Derivation scheme. SubSeed hashes (seed, cell, trial) through two rounds
// of splitmix64 with distinct odd multipliers on each coordinate:
//
//	s1 = splitmix64(seed ^ 0xff51afd7ed558ccd*(cell+1))
//	s2 = splitmix64(s1   ^ 0xa3c59ac2b54d4d69*(trial+1))
//
// Two properties matter. First, the derivation is pure: SubSeed(seed, c, t)
// names the same stream no matter which goroutine computes it or in what
// order, so parallel trial runners are bit-identical to serial ones.
// Second, coordinates are mixed in separate rounds, so neighbouring cells
// and neighbouring trials land in statistically independent streams (the
// rng tests measure cross-stream correlation).
//
// The trial-coordinate multiplier and round are shared with Stream, making
// SubSeed(seed, cell, trial) == seed' such that Stream-compatibility holds:
// SubStream(seed, c, t) equals Stream(splitmix64(seed ^ Mc*(c+1)), t) --
// a cell is exactly a numbered family of ordinary streams.

// subSeedCellMult and subSeedTrialMult are the per-coordinate odd
// multipliers of the substream derivation. The trial multiplier is the one
// Stream already uses; the cell multiplier is the MurmurHash3 finalizer
// constant, chosen for having no algebraic relation to the other.
const (
	subSeedCellMult  = 0xff51afd7ed558ccd
	subSeedTrialMult = 0xa3c59ac2b54d4d69
)

// CellSeed collapses (seed, cell) into the seed of the cell's stream
// family: Stream(CellSeed(seed, c), t) == SubStream(seed, c, t). Selection
// probes use it to hand every technique arm of a grid cell the same family
// of failure draws (common random numbers).
func CellSeed(seed, cell uint64) uint64 {
	sm := seed ^ subSeedCellMult*(cell+1)
	return splitmix64(&sm)
}

// SubSeed derives the xoshiro seed of the (cell, trial) substream.
func SubSeed(seed, cell, trial uint64) uint64 {
	sm := CellSeed(seed, cell) ^ subSeedTrialMult*(trial+1)
	return splitmix64(&sm)
}

// SubStream returns the (cell, trial) substream of a spec-keyed seed. Like
// Stream it is stateless: equal coordinates always name the same stream.
func SubStream(seed, cell, trial uint64) *Source {
	src := &Source{}
	src.SetSubStream(seed, cell, trial)
	return src
}

// Seed re-seeds the Source in place, exactly as New(seed) would have
// initialized it, and clears any antithetic mirroring. Trial loops use it
// to reuse one Source across thousands of streams without allocating.
func (r *Source) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	if r.s == [4]uint64{} {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.mirror = false
}

// SetStream re-seeds the Source in place to the i-th numbered substream of
// seed; Stream(seed, i) and a SetStream(seed, i) Source produce identical
// output. Mirroring is cleared.
func (r *Source) SetStream(seed uint64, i uint64) {
	sm := seed ^ subSeedTrialMult*(i+1)
	r.Seed(splitmix64(&sm))
}

// SetSubStream re-seeds the Source in place to the (cell, trial) substream
// of seed. Mirroring is cleared.
func (r *Source) SetSubStream(seed, cell, trial uint64) {
	r.Seed(SubSeed(seed, cell, trial))
}

// SetMirror switches antithetic mirroring on or off. A mirrored Source
// returns 1-U (to the resolution of the 53-bit mantissa) wherever the
// unmirrored Source would return U: Float64 and everything built on it
// (Uniform, Exp, Weibull, Bool) draw from the reflected uniform, and Intn
// reflects its result to n-1-i — a bijection, so uniformity is preserved,
// but draws over ordered populations become antithetic (see Intn). The
// raw bit stream (Uint64) and the order-structured draws built on it
// (Perm, Shuffle) are unaffected: reflecting a permutation index would
// not anti-correlate anything meaningful.
//
// Mirroring never changes how much state the generator consumes: a
// mirrored Source and its plain twin stay in lockstep draw for draw, which
// is what makes the pair's two runs structurally comparable.
func (r *Source) SetMirror(m bool) { r.mirror = m }

// Mirrored reports whether the source is antithetically mirrored.
func (r *Source) Mirrored() bool { return r.mirror }

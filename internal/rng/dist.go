package rng

import (
	"fmt"
	"math"
)

// Discrete samples from a fixed finite probability mass function in O(1)
// time using Vose's alias method. The failure model uses it to draw failure
// severity levels from the empirical level ratios of Moody et al.
type Discrete struct {
	prob  []float64
	alias []int
}

// NewDiscrete builds a sampler over outcomes 0..len(weights)-1 with
// probability proportional to weights[i]. Weights need not be normalized.
// It returns an error if no weight is positive or any weight is negative,
// NaN, or infinite.
func NewDiscrete(weights []float64) (*Discrete, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: empty weight vector")
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: invalid weight %v at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: all weights are zero")
	}

	d := &Discrete{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Vose's algorithm: split scaled probabilities into "small" (< 1) and
	// "large" (>= 1) worklists, then pair each small cell with a large
	// donor.
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		d.prob[s] = scaled[s]
		d.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Anything left over is numerically 1.
	for _, i := range large {
		d.prob[i] = 1
		d.alias[i] = i
	}
	for _, i := range small {
		d.prob[i] = 1
		d.alias[i] = i
	}
	return d, nil
}

// MustDiscrete is NewDiscrete but panics on error; intended for weight
// vectors that are compile-time constants.
func MustDiscrete(weights []float64) *Discrete {
	d, err := NewDiscrete(weights)
	if err != nil {
		panic(err)
	}
	return d
}

// Len reports the number of outcomes.
func (d *Discrete) Len() int { return len(d.prob) }

// Sample draws one outcome index using src.
func (d *Discrete) Sample(src *Source) int {
	i := src.Intn(len(d.prob))
	if src.Float64() < d.prob[i] {
		return i
	}
	return d.alias[i]
}

// Prob reports the normalized probability of outcome i, reconstructed from
// the alias table. It is primarily a testing aid.
func (d *Discrete) Prob(i int) float64 {
	n := float64(len(d.prob))
	p := d.prob[i] / n
	for j, pj := range d.prob {
		if d.alias[j] == i && j != i {
			p += (1 - pj) / n
		}
	}
	return p
}

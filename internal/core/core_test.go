package core

import (
	"strings"
	"testing"
)

func TestTechniqueEnumeration(t *testing.T) {
	ts := Techniques()
	if len(ts) != 7 {
		t.Fatalf("Techniques() lists %d, want 7", len(ts))
	}
	seen := map[Technique]bool{}
	for _, tech := range ts {
		if !tech.Valid() {
			t.Errorf("%v not valid", tech)
		}
		if tech == Ideal {
			t.Error("Ideal should not appear among the real techniques")
		}
		if seen[tech] {
			t.Errorf("duplicate technique %v", tech)
		}
		seen[tech] = true
	}
	paper := PaperTechniques()
	if len(paper) != 5 {
		t.Fatalf("PaperTechniques() lists %d, want the paper's 5", len(paper))
	}
	for i, tech := range paper {
		if ts[i] != tech {
			t.Errorf("PaperTechniques()[%d] = %v, want the same order as Techniques()", i, tech)
		}
		if tech == InMemoryReplicatedCheckpoint || tech == LightweightReplication {
			t.Errorf("post-2017 extension %v should not appear among the paper techniques", tech)
		}
	}
	if len(ClusterTechniques()) != 3 {
		t.Error("cluster studies use 3 techniques")
	}
	for _, tech := range ClusterTechniques() {
		if tech == PartialRedundancy || tech == FullRedundancy {
			t.Error("redundancy should be excluded from cluster studies")
		}
	}
}

func TestTechniqueStrings(t *testing.T) {
	want := map[Technique]string{
		Ideal:                        "Ideal",
		CheckpointRestart:            "Checkpoint Restart",
		MultilevelCheckpoint:         "Multilevel Checkpoint",
		ParallelRecovery:             "Parallel Recovery",
		PartialRedundancy:            "Redundancy r=1.5",
		FullRedundancy:               "Redundancy r=2.0",
		InMemoryReplicatedCheckpoint: "In-Memory Replicated Checkpoint",
		LightweightReplication:       "Lightweight Replication",
	}
	for tech, s := range want {
		if tech.String() != s {
			t.Errorf("%d.String() = %q, want %q", tech, tech.String(), s)
		}
	}
	if !strings.Contains(Technique(42).String(), "42") {
		t.Error("unknown technique should render its number")
	}
	if Technique(42).Valid() {
		t.Error("Technique(42) should be invalid")
	}
}

func TestParseTechniqueRoundTrip(t *testing.T) {
	names := map[string]Technique{
		"ideal":                   Ideal,
		"cr":                      CheckpointRestart,
		"checkpoint-restart":      CheckpointRestart,
		"ml":                      MultilevelCheckpoint,
		"multilevel":              MultilevelCheckpoint,
		"pr":                      ParallelRecovery,
		"parallel-recovery":       ParallelRecovery,
		"red1.5":                  PartialRedundancy,
		"red2.0":                  FullRedundancy,
		"restore":                 InMemoryReplicatedCheckpoint,
		"in-memory-replicated":    InMemoryReplicatedCheckpoint,
		"teampi":                  LightweightReplication,
		"lightweight-replication": LightweightReplication,
	}
	for name, want := range names {
		got, err := ParseTechnique(name)
		if err != nil || got != want {
			t.Errorf("ParseTechnique(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseTechnique("bogus"); err == nil {
		t.Error("bogus technique accepted")
	}
}

func TestSchedulerEnumeration(t *testing.T) {
	if len(Schedulers()) != 3 {
		t.Error("the paper evaluates 3 schedulers")
	}
	if len(AllSchedulers()) != 4 {
		t.Error("AllSchedulers should add the backfill extension")
	}
	for _, s := range AllSchedulers() {
		if !s.Valid() {
			t.Errorf("%v invalid", s)
		}
		if s.String() == "" || strings.HasPrefix(s.String(), "Scheduler(") {
			t.Errorf("%d has no name", s)
		}
	}
	if Scheduler(9).Valid() {
		t.Error("Scheduler(9) should be invalid")
	}
	if !strings.Contains(Scheduler(9).String(), "9") {
		t.Error("unknown scheduler should render its number")
	}
}

func TestParseScheduler(t *testing.T) {
	names := map[string]Scheduler{
		"fcfs":     FCFS,
		"random":   RandomOrder,
		"slack":    SlackBased,
		"backfill": EASYBackfill,
		"easy":     EASYBackfill,
	}
	for name, want := range names {
		got, err := ParseScheduler(name)
		if err != nil || got != want {
			t.Errorf("ParseScheduler(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScheduler("lifo"); err == nil {
		t.Error("unknown scheduler name accepted")
	}
}

// Package core holds the small set of domain types shared by every layer
// of the simulator — technique identifiers and study-wide enumerations —
// so that the workload, resilience, scheduling, and experiment packages can
// agree on vocabulary without importing one another.
package core

import "fmt"

// Technique identifies one of the HPC resilience strategies compared by the
// study.
type Technique int

// The four techniques of the paper (redundancy appears at two degrees, as
// in Figures 1-3), plus the no-resilience ideal baseline used by the
// resource-management study.
const (
	// Ideal is the failure-free, overhead-free baseline.
	Ideal Technique = iota
	// CheckpointRestart is blocking, uncoordinated checkpointing to the
	// parallel file system with a Daly-optimal period.
	CheckpointRestart
	// MultilevelCheckpoint is the three-level scheme of Moody et al.:
	// local RAM, partner RAM, and parallel file system.
	MultilevelCheckpoint
	// ParallelRecovery is message logging with in-memory checkpoints and
	// parallelized rework, after Meneses et al.
	ParallelRecovery
	// PartialRedundancy duplicates half of the application's virtual
	// nodes (degree r = 1.5) on top of PFS checkpointing.
	PartialRedundancy
	// FullRedundancy duplicates every virtual node (degree r = 2.0) on
	// top of PFS checkpointing.
	FullRedundancy
	// InMemoryReplicatedCheckpoint is ReStore-style checkpoint storage
	// (arXiv:2203.01107): checkpoints are replicated across peer RAM with
	// degree k, so restores are near-free unless at least k replica
	// holders fail within one checkpoint interval, which loses the replica
	// set and forces a PFS-cost relaunch. A post-2017 extension beyond the
	// paper's menu.
	InMemoryReplicatedCheckpoint
	// LightweightReplication is TeaMPI-style team replication
	// (arXiv:2005.12091): two replicas per virtual node, but only a small
	// heartbeat/sync penalty in steady state instead of full redundancy's
	// lockstep message duplication; an unrecovered double failure
	// relaunches the application. A post-2017 extension beyond the paper's
	// menu.
	LightweightReplication

	numTechniques
)

// Techniques lists every real technique (excluding Ideal) in presentation
// order: the paper's five in the bar order of its figures, then the
// post-2017 extensions.
func Techniques() []Technique {
	return []Technique{
		CheckpointRestart,
		MultilevelCheckpoint,
		ParallelRecovery,
		PartialRedundancy,
		FullRedundancy,
		InMemoryReplicatedCheckpoint,
		LightweightReplication,
	}
}

// PaperTechniques lists only the five technique variants of the 2017
// paper, in its presentation order. The paper's own exhibits (Figures 1-3,
// the cross-machine table) use this list so their pinned outputs do not
// shift as the repository's technique menu grows.
func PaperTechniques() []Technique {
	return []Technique{
		CheckpointRestart,
		MultilevelCheckpoint,
		ParallelRecovery,
		PartialRedundancy,
		FullRedundancy,
	}
}

// ClusterTechniques lists the techniques carried into the Section VI/VII
// cluster studies; the paper drops both redundancy variants there because
// Section V shows them unviable at exascale.
func ClusterTechniques() []Technique {
	return []Technique{CheckpointRestart, MultilevelCheckpoint, ParallelRecovery}
}

// Valid reports whether t names a known technique.
func (t Technique) Valid() bool { return t >= Ideal && t < numTechniques }

// String names the technique as the paper does.
func (t Technique) String() string {
	switch t {
	case Ideal:
		return "Ideal"
	case CheckpointRestart:
		return "Checkpoint Restart"
	case MultilevelCheckpoint:
		return "Multilevel Checkpoint"
	case ParallelRecovery:
		return "Parallel Recovery"
	case PartialRedundancy:
		return "Redundancy r=1.5"
	case FullRedundancy:
		return "Redundancy r=2.0"
	case InMemoryReplicatedCheckpoint:
		return "In-Memory Replicated Checkpoint"
	case LightweightReplication:
		return "Lightweight Replication"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// ParseTechnique maps a CLI-friendly name to a Technique.
func ParseTechnique(name string) (Technique, error) {
	switch name {
	case "ideal":
		return Ideal, nil
	case "cr", "checkpoint-restart":
		return CheckpointRestart, nil
	case "ml", "multilevel":
		return MultilevelCheckpoint, nil
	case "pr", "parallel-recovery":
		return ParallelRecovery, nil
	case "red1.5", "partial-redundancy":
		return PartialRedundancy, nil
	case "red2.0", "full-redundancy":
		return FullRedundancy, nil
	case "restore", "in-memory-replicated":
		return InMemoryReplicatedCheckpoint, nil
	case "teampi", "lightweight-replication":
		return LightweightReplication, nil
	}
	return 0, fmt.Errorf("core: unknown technique %q", name)
}

// Scheduler identifies one of the resource-management heuristics of
// Section III-D.
type Scheduler int

// The three resource-management techniques.
const (
	// FCFS maps applications strictly in arrival order.
	FCFS Scheduler = iota
	// RandomOrder maps applications in random order.
	RandomOrder
	// SlackBased prioritizes applications with the least schedule slack
	// and drops those whose deadlines are already unreachable.
	SlackBased
	// EASYBackfill is FCFS with EASY backfilling: later applications may
	// jump the queue if they cannot delay the blocked head's reservation.
	// It is a repository extension beyond the paper's three heuristics.
	EASYBackfill

	numSchedulers
)

// Schedulers lists the paper's heuristics in its presentation order.
func Schedulers() []Scheduler { return []Scheduler{FCFS, RandomOrder, SlackBased} }

// AllSchedulers lists every implemented heuristic, including the
// EASY-backfill extension.
func AllSchedulers() []Scheduler {
	return []Scheduler{FCFS, RandomOrder, SlackBased, EASYBackfill}
}

// Valid reports whether s names a known scheduler.
func (s Scheduler) Valid() bool { return s >= FCFS && s < numSchedulers }

// String names the scheduler as the paper does.
func (s Scheduler) String() string {
	switch s {
	case FCFS:
		return "FCFS"
	case RandomOrder:
		return "Random"
	case SlackBased:
		return "Slack-Based"
	case EASYBackfill:
		return "EASY-Backfill"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// ParseScheduler maps a CLI-friendly name to a Scheduler.
func ParseScheduler(name string) (Scheduler, error) {
	switch name {
	case "fcfs":
		return FCFS, nil
	case "random":
		return RandomOrder, nil
	case "slack":
		return SlackBased, nil
	case "backfill", "easy":
		return EASYBackfill, nil
	}
	return 0, fmt.Errorf("core: unknown scheduler %q", name)
}

// Package check is the model-conformance audit harness: it cross-validates
// the discrete-event simulator against the closed-form analytic models and
// enforces the runtime invariants every execution trace must satisfy.
//
// The package has three instruments, combined by the sweep in
// conformance.go and exposed individually for tests and the exacheck CLI:
//
//   - Checker (this file) is a resilience.Observer that replays a run's
//     trace through an independent mirror of the engine's state machine and
//     records every contract violation: time or progress going backwards,
//     restores that resurrect destroyed checkpoints, restore levels below a
//     failure's severity, completions away from the effective-work total.
//   - Sweep (conformance.go) runs a grid of (technique, class, size, MTBF)
//     cells, checks every trace, and compares the Monte-Carlo mean
//     efficiency of each cell against the analytic prediction.
//   - Metamorphic (metamorphic.go) checks the model-level scaling relations
//     that hold across runs rather than within one.
//
// The checker assumes the paper's blocking-checkpoint model (the sweep's
// configuration); under the semi-blocking extension progress legitimately
// overshoots snapshots during writes and the equality checks here do not
// apply.
package check

import (
	"fmt"

	"exaresil/internal/core"
	"exaresil/internal/resilience"
	"exaresil/internal/units"
)

// progressEpsilon absorbs the engine's floating-point drift (its internal
// workEpsilon is 1e-9 minutes; accumulated segment arithmetic can drift a
// few orders beyond that over a long run).
const progressEpsilon = 1e-6

// Violation is one broken runtime invariant, attributed to the simulation
// moment and run that produced it.
type Violation struct {
	// Context identifies the run (sweep cell and trial, or a caller label).
	Context string
	// Time is the simulation time of the offending event.
	Time units.Duration
	// Msg states the broken invariant.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %s: %s", v.Context, v.Time, v.Msg)
}

// Checker validates a single executor's traces against the engine's
// contract. Attach via resilience.Observe, call BeginRun before each run
// and FinishRun after it with the run's Result. The checker accumulates
// violations across runs; it never stops a simulation.
type Checker struct {
	tech       core.Technique
	multilevel bool
	// reStore enables the replica-holder-loss mirror: degree is k and lost
	// counts the holders destroyed since the last commit, so the checker
	// independently predicts when a restore must degrade to a from-scratch
	// relaunch. A degenerate ReStore executor (no peers for the replicas)
	// behaves — and is mirrored — exactly as Checkpoint Restart.
	reStore           bool
	reStoreDegenerate bool
	reStoreDegree     int
	reStoreLost       int // per-run, reset by BeginRun

	context    string
	violations []Violation

	// Per-run trace state, reset by BeginRun.
	started     bool
	completed   bool
	events      int
	lastTime    units.Duration
	progress    units.Duration // progress at the last event
	maxProgress units.Duration
	completedAt units.Duration // progress at the completion event

	inCheckpoint bool
	ckptLevel    int
	ckptSnapshot units.Duration

	committed [4]units.Duration // committed checkpoint progress per level
	has       [4]bool

	restorePending  bool
	pendingSeverity int
	expectedRestore units.Duration // progress the pending restore must resume at
	expectedLevel   int            // 0 = from scratch

	failures, rollbacks int
	checkpoints         [4]int
	restores            [4]int
	severities          [4]int

	// Trace-derived wall-time split of the current run: the mirror's
	// independent accounting of the engine's CheckpointTime, RestartTime
	// and RelaunchTime, accumulated from event brackets alone.
	ckptWallStart    units.Duration // valid while inCheckpoint
	restoreWallStart units.Duration // valid while restorePending
	split            PhaseSplit
}

// PhaseSplit is a trace-derived wall-time decomposition of one run: time
// inside checkpoint writes (including the sunk partial of an interrupted
// write), time inside restores, and — a subset of Restore — time in
// from-scratch relaunches (restores from level 0). It deliberately mirrors
// the Result's makespan decomposition so the two ledgers can be compared.
type PhaseSplit struct {
	Checkpoint, Restore, Relaunch units.Duration
}

// RunSplit reports the trace-derived split of the run most recently fed
// through Observe (reset by BeginRun).
func (c *Checker) RunSplit() PhaseSplit { return c.split }

// RunSeverities reports the run's failure counts by severity level
// (indices 1-3; reset by BeginRun).
func (c *Checker) RunSeverities() [4]int { return c.severities }

// NewChecker builds a checker for the given executor's runs. The run's
// effective-work total (a pure function of the strategy, reported by every
// Result) is supplied per run via BeginRun.
func NewChecker(x resilience.Executor) *Checker {
	c := &Checker{
		tech:       x.Technique(),
		multilevel: x.Technique() == core.MultilevelCheckpoint,
	}
	if info, ok := resilience.ReStoreInfoOf(x); ok {
		c.reStore = !info.Degenerate
		c.reStoreDegenerate = info.Degenerate
		c.reStoreDegree = info.Degree
	}
	return c
}

// BeginRun resets the per-run state. label names the run in violations.
func (c *Checker) BeginRun(label string) {
	c.context = label
	c.started, c.completed = false, false
	c.events = 0
	c.lastTime, c.progress = 0, 0
	c.maxProgress, c.completedAt = 0, 0
	c.inCheckpoint, c.ckptLevel, c.ckptSnapshot = false, 0, 0
	c.committed = [4]units.Duration{}
	c.has = [4]bool{}
	c.restorePending, c.pendingSeverity = false, 0
	c.expectedRestore, c.expectedLevel = 0, 0
	c.failures, c.rollbacks = 0, 0
	c.checkpoints = [4]int{}
	c.restores = [4]int{}
	c.severities = [4]int{}
	c.ckptWallStart, c.restoreWallStart = 0, 0
	c.split = PhaseSplit{}
	c.reStoreLost = 0
}

// Violations returns every violation recorded so far, across runs.
func (c *Checker) Violations() []Violation { return c.violations }

func (c *Checker) fail(t units.Duration, format string, args ...any) {
	c.violations = append(c.violations, Violation{
		Context: c.context,
		Time:    t,
		Msg:     fmt.Sprintf(format, args...),
	})
}

// Observe is the resilience.Observer callback.
func (c *Checker) Observe(ev resilience.TraceEvent) {
	c.events++
	if c.events > 1 && ev.Time < c.lastTime {
		c.fail(ev.Time, "time ran backwards: %s after %s", ev.Time, c.lastTime)
	}
	if c.completed {
		c.fail(ev.Time, "%s event after completion", ev.Kind)
	}

	switch ev.Kind {
	case resilience.TraceStart:
		if c.started {
			c.fail(ev.Time, "second start event")
		}
		c.started = true
		if ev.Progress != 0 {
			c.fail(ev.Time, "run started with progress %s, want 0", ev.Progress)
		}

	case resilience.TraceCheckpointStart:
		if c.restorePending {
			c.fail(ev.Time, "checkpoint started during a restore")
		}
		if c.inCheckpoint {
			c.fail(ev.Time, "nested checkpoint (level %d inside level %d)", ev.Level, c.ckptLevel)
		}
		c.checkProgressMonotone(ev)
		c.checkLevelRange(ev, "checkpoint")
		c.inCheckpoint = true
		c.ckptLevel = ev.Level
		c.ckptSnapshot = ev.Progress
		c.ckptWallStart = ev.Time

	case resilience.TraceCheckpointEnd:
		if !c.inCheckpoint {
			c.fail(ev.Time, "checkpoint end without a start")
		} else {
			if ev.Level != c.ckptLevel {
				c.fail(ev.Time, "checkpoint ended at level %d but started at level %d", ev.Level, c.ckptLevel)
			}
			c.split.Checkpoint += ev.Time - c.ckptWallStart
		}
		c.checkProgressMonotone(ev)
		// The committed state is the snapshot captured at checkpoint START;
		// that is the strongest progress any later restore may resume at.
		if l := clamp(ev.Level); l >= 1 {
			c.committed[l] = c.ckptSnapshot
			c.has[l] = true
			c.checkpoints[l]++
		}
		c.inCheckpoint = false
		// A ReStore commit re-provisions the replica set: only holder
		// losses after this point can combine to destroy it.
		c.reStoreLost = 0

	case resilience.TraceFailure:
		c.failures++
		c.severities[clamp(int(ev.Severity))]++
		c.checkProgressMonotone(ev)
		if !ev.Rollback {
			break
		}
		c.rollbacks++
		// Wall time sunk into an interrupted blocking phase belongs to that
		// phase, exactly as the engine accounts it.
		if c.inCheckpoint {
			c.split.Checkpoint += ev.Time - c.ckptWallStart
		}
		if c.restorePending {
			partial := ev.Time - c.restoreWallStart
			c.split.Restore += partial
			if c.expectedLevel == 0 {
				c.split.Relaunch += partial
			}
		}
		// A rollback cancels any in-flight checkpoint and supersedes any
		// in-flight restore.
		c.inCheckpoint = false
		sev := int(ev.Severity)
		if c.multilevel {
			// Severity-j failures destroy the storage behind levels < j.
			for level := 1; level < sev && level <= 3; level++ {
				c.has[level] = false
				c.committed[level] = 0
			}
		}
		if c.reStore {
			// Mirror the replica ledger: a node loss destroys one holder's
			// copy, a catastrophic failure two; once the losses since the
			// last commit reach the degree, the in-memory checkpoint is gone
			// and the only legal restore is a from-scratch relaunch.
			c.reStoreLost += holderCopiesLost(sev)
			if c.reStoreLost >= c.reStoreDegree {
				c.has[2] = false
				c.committed[2] = 0
			}
		}
		c.restorePending = true
		c.pendingSeverity = sev
		c.expectedRestore, c.expectedLevel = c.expectRestore(sev)
		c.restoreWallStart = ev.Time

	case resilience.TraceRestartEnd:
		if !c.restorePending {
			c.fail(ev.Time, "restart ended without a rollback")
			break
		}
		c.restorePending = false
		c.restores[clamp(ev.Level)]++
		wall := ev.Time - c.restoreWallStart
		c.split.Restore += wall
		if ev.Level == 0 {
			c.split.Relaunch += wall
		}
		c.checkRestore(ev)

	case resilience.TraceComplete:
		c.checkProgressMonotone(ev)
		if c.restorePending {
			c.fail(ev.Time, "run completed mid-restore")
		}
		c.completed = true
		c.completedAt = ev.Progress
	}

	c.lastTime = ev.Time
	c.progress = ev.Progress
	if ev.Progress > c.maxProgress {
		c.maxProgress = ev.Progress
	}
}

// expectRestore mirrors the strategies' restore decision: the newest
// committed checkpoint the failure's severity allows (multilevel restricts
// to surviving levels >= severity; single-level techniques always restore
// their newest commit), or a from-scratch relaunch when none survives.
func (c *Checker) expectRestore(severity int) (units.Duration, int) {
	minLevel := 1
	if c.multilevel {
		minLevel = severity
	}
	best, bestProgress := 0, units.Duration(0)
	for level := minLevel; level <= 3; level++ {
		if c.has[level] && (best == 0 || c.committed[level] > bestProgress) {
			best = level
			bestProgress = c.committed[level]
		}
	}
	return bestProgress, best
}

// checkRestore validates a completed restore against the mirror.
func (c *Checker) checkRestore(ev resilience.TraceEvent) {
	if ev.Level == 0 && ev.Progress != 0 {
		c.fail(ev.Time, "from-scratch restart resumed at progress %s, want 0", ev.Progress)
	}
	if c.multilevel && ev.Level != 0 && ev.Level < c.pendingSeverity {
		c.fail(ev.Time, "restored from level %d after a severity-%d failure", ev.Level, c.pendingSeverity)
	}
	if ev.Progress > c.progress+progressEpsilon {
		c.fail(ev.Time, "restore resumed at %s, above the %s held at failure", ev.Progress, c.progress)
	}
	if ev.Level != c.expectedLevel {
		c.fail(ev.Time, "restored from level %d, want level %d (newest eligible checkpoint)", ev.Level, c.expectedLevel)
	}
	if delta := float64(ev.Progress - c.expectedRestore); delta < -progressEpsilon || delta > progressEpsilon {
		c.fail(ev.Time, "restored progress %s, want committed checkpoint %s", ev.Progress, c.expectedRestore)
	}
}

// checkProgressMonotone enforces monotone progress between events; only a
// completed rollback (TraceRestartEnd, validated separately) may lower it.
func (c *Checker) checkProgressMonotone(ev resilience.TraceEvent) {
	if c.restorePending {
		// Events during a restore (further failures) hold the restored
		// progress; the engine does not compute during restores.
		if delta := float64(ev.Progress - c.expectedRestore); delta < -progressEpsilon || delta > progressEpsilon {
			c.fail(ev.Time, "progress %s changed during a restore (restore point %s)", ev.Progress, c.expectedRestore)
		}
		return
	}
	if ev.Progress < c.progress-progressEpsilon {
		c.fail(ev.Time, "progress ran backwards: %s after %s without a rollback", ev.Progress, c.progress)
	}
}

// checkLevelRange validates checkpoint levels against the technique's
// storage hierarchy: CR and redundancy write only to the PFS (level 3),
// Parallel Recovery only to remote memory (level 2), multilevel to 1-3.
func (c *Checker) checkLevelRange(ev resilience.TraceEvent, what string) {
	ok := true
	switch c.tech {
	case core.CheckpointRestart, core.PartialRedundancy, core.FullRedundancy:
		ok = ev.Level == 3
	case core.ParallelRecovery:
		ok = ev.Level == 2
	case core.MultilevelCheckpoint:
		ok = ev.Level >= 1 && ev.Level <= 3
	case core.InMemoryReplicatedCheckpoint:
		// Peer-RAM replicas are partner-level storage (level 2); the
		// degenerate fallback writes to the PFS like Checkpoint Restart.
		if c.reStoreDegenerate {
			ok = ev.Level == 3
		} else {
			ok = ev.Level == 2
		}
	case core.LightweightReplication:
		// The scheme keeps no checkpoints at all.
		ok = false
	}
	if !ok {
		c.fail(ev.Time, "%v %s at level %d outside the technique's hierarchy", c.tech, what, ev.Level)
	}
}

// FinishRun cross-checks the trace against the run's Result: event counts
// must reconcile with the Result's counters and a completed run must have
// ended at its final event.
func (c *Checker) FinishRun(res resilience.Result) {
	end := res.End
	if res.Blocked != "" {
		if c.events != 0 {
			c.fail(end, "blocked run emitted %d events", c.events)
		}
		return
	}
	if c.events == 0 {
		c.fail(end, "run emitted no events (missing start)")
		return
	}
	if !c.started {
		c.fail(end, "trace has no start event")
	}
	if res.Completed != c.completed {
		c.fail(end, "Result.Completed=%v but trace completion=%v", res.Completed, c.completed)
	}
	if res.Failures != c.failures {
		c.fail(end, "Result counts %d failures, trace %d", res.Failures, c.failures)
	}
	if res.Rollbacks != c.rollbacks {
		c.fail(end, "Result counts %d rollbacks, trace %d", res.Rollbacks, c.rollbacks)
	}
	for level := 1; level <= 3; level++ {
		if res.Checkpoints[level] != c.checkpoints[level] {
			c.fail(end, "Result counts %d level-%d checkpoints, trace %d",
				res.Checkpoints[level], level, c.checkpoints[level])
		}
	}
	// The trace-derived phase split must reconcile with the Result's
	// makespan decomposition: both ledgers bracket the same blocking
	// phases, so they may differ only by floating-point drift. (A phase
	// still in flight at the horizon is excluded from both.)
	ttol := units.Duration(completionTol(res.Makespan()))
	if diff := c.split.Checkpoint - res.CheckpointTime; diff < -ttol || diff > ttol {
		c.fail(end, "trace-derived checkpoint time %s, Result reports %s", c.split.Checkpoint, res.CheckpointTime)
	}
	if diff := c.split.Restore - res.RestartTime; diff < -ttol || diff > ttol {
		c.fail(end, "trace-derived restore time %s, Result reports %s", c.split.Restore, res.RestartTime)
	}
	if diff := c.split.Relaunch - res.RelaunchTime; diff < -ttol || diff > ttol {
		c.fail(end, "trace-derived relaunch time %s, Result reports %s", c.split.Relaunch, res.RelaunchTime)
	}
	// Progress is bounded by the effective-work total, and a completed run
	// must have crossed the finish line at exactly that total (the Result
	// is the authority on the total; the metamorphic checks pin its
	// formula to the paper's equations separately).
	tol := units.Duration(completionTol(res.EffectiveWork))
	if c.maxProgress > res.EffectiveWork+tol {
		c.fail(end, "progress reached %s, above the effective work %s", c.maxProgress, res.EffectiveWork)
	}
	if c.completed {
		if diff := c.completedAt - res.EffectiveWork; diff < -tol || diff > tol {
			c.fail(end, "completed at progress %s, want effective work %s", c.completedAt, res.EffectiveWork)
		}
		if res.End != c.lastTime {
			c.fail(end, "completed at %s but Result ends at %s", c.lastTime, res.End)
		}
		if res.Makespan() < res.EffectiveWork-units.Duration(completionTol(res.EffectiveWork)) {
			c.fail(end, "makespan %s below effective work %s", res.Makespan(), res.EffectiveWork)
		}
		if eff := res.Efficiency(); eff <= 0 || eff > 1 {
			c.fail(end, "completed run has efficiency %v outside (0, 1]", eff)
		}
	}
}

// completionTol scales the completion tolerance with the work total: a
// relative 1e-9 per accumulated segment is the engine's drift budget.
func completionTol(work units.Duration) float64 {
	t := 1e-9 * float64(work)
	if t < progressEpsilon {
		t = progressEpsilon
	}
	return t
}

// holderCopiesLost mirrors the ReStore strategy's severity mapping: node
// losses destroy one replica holder's copy, catastrophic failures a node
// and its partner — two copies; transients leave memory intact.
func holderCopiesLost(severity int) int {
	switch severity {
	case 2:
		return 1
	case 3:
		return 2
	default:
		return 0
	}
}

func clamp(level int) int {
	if level < 0 {
		return 0
	}
	if level > 3 {
		return 3
	}
	return level
}

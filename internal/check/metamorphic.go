package check

import (
	"fmt"
	"math"

	"exaresil/internal/appsim"
	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// mtbfSlack is the Monte-Carlo slack allowed in the failure-rate
// monotonicity check: neighbouring MTBF steps with nearly identical true
// efficiencies can invert by sampling noise, so a small observed increase
// is not a model bug.
const mtbfSlack = 0.02

// metamorphic runs the model-level scaling relations of the audit: checks
// that hold across runs rather than within a single trace.
//
//  1. Efficiency is non-increasing in the failure rate: for every
//     technique, halving the component MTBF cannot improve the mean
//     simulated efficiency (beyond Monte-Carlo slack).
//  2. Parallel Recovery's effective work is exactly mu * T_B with
//     mu = 1 + T_C/10 (Eq. 7), for every class.
//  3. Redundancy's baseline stretch is linear in the degree r through the
//     communication term (Eq. 8), and its footprint is ceil(r * N_a).
//  4. ReStore's replica-degree ordering: the replicated-checkpoint cost is
//     linear in the degree k, and an unavailable degree degenerates to
//     Checkpoint Restart run-for-run.
//  5. Lightweight Replication's stretch sits between the plain baseline
//     and full redundancy's Eq. 8 stretch, on a 2 * N_a footprint.
func (s Sweep) metamorphic() []string {
	var fails []string
	fails = append(fails, s.checkMTBFMonotone()...)
	fails = append(fails, s.checkMuScaling()...)
	fails = append(fails, s.checkRedundancyScaling()...)
	fails = append(fails, s.checkReplicaDegreeOrdering()...)
	fails = append(fails, s.checkTeamReplicationStretch()...)
	return fails
}

// checkMTBFMonotone descends the MTBF ladder and requires mean efficiency
// to be non-increasing for every technique at a fixed operating point.
func (s Sweep) checkMTBFMonotone() []string {
	ladder := []units.Duration{
		10 * units.Year,
		5 * units.Year,
		units.Duration(2.5) * units.Year,
	}
	app := workload.App{
		Class:     workload.C64,
		TimeSteps: s.TimeSteps,
		Nodes:     s.Machine.NodesForFraction(0.10),
	}

	var fails []string
	for _, tech := range s.Techniques {
		prev := math.Inf(1)
		prevMTBF := units.Duration(0)
		for _, mtbf := range ladder {
			cfg := s.Machine.WithMTBF(mtbf)
			model, err := failures.NewModel(mtbf, s.PMF)
			if err != nil {
				fails = append(fails, fmt.Sprintf("mtbf-monotone %v: %v", tech, err))
				break
			}
			x, err := resilience.New(tech, app, cfg, model, s.Resilience)
			if err != nil {
				fails = append(fails, fmt.Sprintf("mtbf-monotone %v: %v", tech, err))
				break
			}
			st := appsim.Run(appsim.TrialSpec{Executor: x, Trials: s.Trials, Seed: s.Seed})
			if st.Efficiency.Mean > prev+mtbfSlack {
				fails = append(fails, fmt.Sprintf(
					"mtbf-monotone %v: efficiency rose from %.4f at %s MTBF to %.4f at %s",
					tech, prev, prevMTBF, st.Efficiency.Mean, mtbf))
			}
			prev, prevMTBF = st.Efficiency.Mean, mtbf
		}
	}
	return fails
}

// checkMuScaling pins Parallel Recovery's work inflation to Eq. 7 for
// every class, via the Result's effective-work total on a failure-free
// probe run, and the no-inflation contract of the checkpoint techniques.
func (s Sweep) checkMuScaling() []string {
	// A near-infinite MTBF makes the probe failure-free without changing
	// the effective-work total (a pure function of the strategy).
	mtbf := 1e6 * units.Year
	cfg := s.Machine.WithMTBF(mtbf)
	model, err := failures.NewModel(mtbf, s.PMF)
	if err != nil {
		return []string{fmt.Sprintf("mu-scaling: %v", err)}
	}

	var fails []string
	for _, class := range workload.Classes() {
		app := workload.App{Class: class, TimeSteps: s.TimeSteps, Nodes: s.Machine.NodesForFraction(0.01)}
		probe := func(tech core.Technique) (resilience.Result, error) {
			x, err := resilience.New(tech, app, cfg, model, s.Resilience)
			if err != nil {
				return resilience.Result{}, err
			}
			return x.Run(0, units.Duration(float64(app.Baseline())*10), rng.New(s.Seed)), nil
		}

		res, err := probe(core.ParallelRecovery)
		if err != nil {
			fails = append(fails, fmt.Sprintf("mu-scaling %s: %v", class.Name, err))
			continue
		}
		mu := resilience.MessageLoggingSlowdown(class)
		want := units.Duration(mu * float64(app.Baseline()))
		if !closeRel(float64(res.EffectiveWork), float64(want)) {
			fails = append(fails, fmt.Sprintf(
				"mu-scaling %s: Parallel Recovery effective work %s, want mu*T_B = %s (mu=%.4f)",
				class.Name, res.EffectiveWork, want, mu))
		}
		if mu > 1 && res.EffectiveWork <= app.Baseline() {
			fails = append(fails, fmt.Sprintf(
				"mu-scaling %s: message logging did not inflate the baseline", class.Name))
		}

		for _, tech := range []core.Technique{core.CheckpointRestart, core.MultilevelCheckpoint} {
			res, err := probe(tech)
			if err != nil {
				fails = append(fails, fmt.Sprintf("mu-scaling %s/%v: %v", class.Name, tech, err))
				continue
			}
			if res.EffectiveWork != app.Baseline() {
				fails = append(fails, fmt.Sprintf(
					"mu-scaling %s: %v effective work %s, want the uninflated baseline %s",
					class.Name, tech, res.EffectiveWork, app.Baseline()))
			}
		}
	}
	return fails
}

// checkRedundancyScaling pins Eq. 8: the baseline stretch is the per-step
// communication term scaled by r, so the excess over the plain baseline is
// linear in (r - 1); and the physical footprint is ceil(r * N_a).
func (s Sweep) checkRedundancyScaling() []string {
	var fails []string
	for _, class := range workload.Classes() {
		app := workload.App{Class: class, TimeSteps: s.TimeSteps, Nodes: s.Machine.NodesForFraction(0.01)}
		base := float64(app.Baseline())
		excess15 := float64(resilience.RedundantBaseline(app, 1.5)) - base
		excess20 := float64(resilience.RedundantBaseline(app, 2.0)) - base

		// Per Eq. 8 the excess is T_S * (r-1) * T_C, so doubling (r-1)
		// doubles it: excess(2.0) = 2 * excess(1.5).
		if !closeRel(excess20, 2*excess15) {
			fails = append(fails, fmt.Sprintf(
				"redundancy-scaling %s: comm-term excess not linear in r-1: r=1.5 gives %v, r=2.0 gives %v",
				class.Name, excess15, excess20))
		}
		wantExcess := float64(app.TimeSteps) * class.CommFraction * float64(units.Minute)
		if !closeRel(excess20, wantExcess) {
			fails = append(fails, fmt.Sprintf(
				"redundancy-scaling %s: r=2.0 excess %v, want T_S*T_C = %v",
				class.Name, excess20, wantExcess))
		}
		if class.CommFraction == 0 && (excess15 != 0 || excess20 != 0) {
			fails = append(fails, fmt.Sprintf(
				"redundancy-scaling %s: communication-free class stretched by redundancy", class.Name))
		}
	}

	for _, nodes := range []int{1, 2, 3, 5, 1200, 12001} {
		for _, r := range []float64{1.5, 2.0} {
			got := resilience.RedundantNodes(nodes, r)
			want := int(math.Ceil(float64(nodes)*r - 1e-9))
			if got != want {
				fails = append(fails, fmt.Sprintf(
					"redundancy-scaling: %d nodes at r=%.1f occupy %d physical, want ceil = %d",
					nodes, r, got, want))
			}
		}
	}
	return fails
}

// checkReplicaDegreeOrdering pins ReStore's replica-degree structure: the
// replicated-checkpoint cost is exactly linear in the degree k (k one-way
// partner copies), an unavailable degree degenerates to Checkpoint Restart
// run-for-run on identical seeds, and at a failure-heavy operating point a
// higher degree cannot hurt: at k = 2 every catastrophic failure (which
// destroys a node and its partner — two copies) loses the replica set and
// relaunches the job, while k = 3 survives it for a checkpoint-cost
// increase that is negligible against L2-scale writes, so mean efficiency
// at k = 3 must not fall below k = 2 beyond Monte-Carlo slack. (No such
// ordering holds against Checkpoint Restart: CR never loses its PFS
// checkpoint, so at low MTBF the k = 2 set losses can pull ReStore below
// it — that cross-technique trade is exactly what ext-menu2 maps.)
func (s Sweep) checkReplicaDegreeOrdering() []string {
	var fails []string

	// Cost linearity: cost(k) = k * L2/2 exactly.
	app := workload.App{Class: workload.C64, TimeSteps: s.TimeSteps, Nodes: s.Machine.NodesForFraction(0.10)}
	costs := resilience.ComputeCosts(app, s.Machine)
	c1 := float64(resilience.ReplicatedCheckpointCost(costs, 1))
	for k := 2; k <= 5; k++ {
		ck := float64(resilience.ReplicatedCheckpointCost(costs, k))
		if !closeRel(ck, float64(k)*c1) {
			fails = append(fails, fmt.Sprintf(
				"replica-degree: checkpoint cost not linear in k: cost(%d)=%v, want %d*cost(1)=%v",
				k, ck, k, float64(k)*c1))
		}
	}

	mtbf := units.Duration(2.5) * units.Year
	cfg := s.Machine.WithMTBF(mtbf)
	model, err := failures.NewModel(mtbf, s.PMF)
	if err != nil {
		return append(fails, fmt.Sprintf("replica-degree: %v", err))
	}

	// Degeneration: a replica degree no smaller than the application is
	// unavailable (no peers can hold the copies), and the executor must be
	// run-for-run identical to Checkpoint Restart.
	small := workload.App{Class: workload.C64, TimeSteps: s.TimeSteps, Nodes: 2}
	opts := s.Resilience
	opts.ReStoreDegree = small.Nodes
	degen, err := resilience.New(core.InMemoryReplicatedCheckpoint, small, cfg, model, opts)
	if err != nil {
		return append(fails, fmt.Sprintf("replica-degree: %v", err))
	}
	cr, err := resilience.New(core.CheckpointRestart, small, cfg, model, s.Resilience)
	if err != nil {
		return append(fails, fmt.Sprintf("replica-degree: %v", err))
	}
	horizon := units.Duration(float64(small.Baseline()) * 100)
	for trial := 0; trial < 3; trial++ {
		seed := s.Seed + uint64(trial)
		a := degen.Run(0, horizon, rng.New(seed))
		b := cr.Run(0, horizon, rng.New(seed))
		a.Technique = b.Technique // the label is the only permitted difference
		if a != b {
			fails = append(fails, fmt.Sprintf(
				"replica-degree: degenerate ReStore diverged from Checkpoint Restart on seed %d:\n restore: %+v\n      cr: %+v",
				seed, a, b))
		}
	}

	// Degree ordering at the failure-heavy point, on common random numbers.
	eff := func(degree int) (float64, error) {
		o := s.Resilience
		o.ReStoreDegree = degree
		x, err := resilience.New(core.InMemoryReplicatedCheckpoint, app, cfg, model, o)
		if err != nil {
			return 0, err
		}
		return appsim.Run(appsim.TrialSpec{Executor: x, Trials: s.Trials, Seed: s.Seed}).Efficiency.Mean, nil
	}
	eff2, err := eff(2)
	if err != nil {
		return append(fails, fmt.Sprintf("replica-degree: %v", err))
	}
	eff3, err := eff(3)
	if err != nil {
		return append(fails, fmt.Sprintf("replica-degree: %v", err))
	}
	if eff3 < eff2-mtbfSlack {
		fails = append(fails, fmt.Sprintf(
			"replica-degree: efficiency fell from %.4f at k=2 to %.4f at k=3 (%s MTBF)",
			eff2, eff3, mtbf))
	}
	return fails
}

// checkTeamReplicationStretch pins Lightweight Replication's steady-state
// model: its baseline stretch T_S * (T_W + (1+s) * T_C) is bounded below by
// the plain baseline (equality exactly when s = 0) and strictly below full
// redundancy's Eq. 8 stretch for s < 1 on every communicating class, and
// its physical footprint is 2 * N_a like full redundancy's.
func (s Sweep) checkTeamReplicationStretch() []string {
	var fails []string
	sync := s.Resilience.TeamSyncPenalty
	for _, class := range workload.Classes() {
		app := workload.App{Class: class, TimeSteps: s.TimeSteps, Nodes: s.Machine.NodesForFraction(0.01)}
		team := float64(resilience.TeamReplicationBaseline(app, sync))
		full := float64(resilience.RedundantBaseline(app, 2.0))
		base := float64(app.Baseline())
		if team < base-1e-9 {
			fails = append(fails, fmt.Sprintf(
				"team-stretch %s: team baseline %v below the plain baseline %v", class.Name, team, base))
		}
		if team > full+1e-9 {
			fails = append(fails, fmt.Sprintf(
				"team-stretch %s: team baseline %v above full redundancy's %v", class.Name, team, full))
		}
		if class.CommFraction > 0 && sync < 1 && team >= full {
			fails = append(fails, fmt.Sprintf(
				"team-stretch %s: sync penalty %.2f did not undercut full redundancy's lockstep stretch",
				class.Name, sync))
		}
		if zero := float64(resilience.TeamReplicationBaseline(app, 0)); !closeRel(zero, base) {
			fails = append(fails, fmt.Sprintf(
				"team-stretch %s: s=0 baseline %v, want the plain baseline %v", class.Name, zero, base))
		}
	}

	mtbf := 10 * units.Year
	model, err := failures.NewModel(mtbf, s.PMF)
	if err != nil {
		return append(fails, fmt.Sprintf("team-stretch: %v", err))
	}
	app := workload.App{Class: workload.C64, TimeSteps: s.TimeSteps, Nodes: s.Machine.NodesForFraction(0.10)}
	x, err := resilience.New(core.LightweightReplication, app, s.Machine.WithMTBF(mtbf), model, s.Resilience)
	if err != nil {
		return append(fails, fmt.Sprintf("team-stretch: %v", err))
	}
	if got, want := x.PhysicalNodes(), 2*app.Nodes; got != want {
		fails = append(fails, fmt.Sprintf("team-stretch: footprint %d physical nodes, want 2*N_a = %d", got, want))
	}
	return fails
}

// closeRel compares within a relative 1e-9.
func closeRel(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

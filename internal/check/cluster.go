package check

import (
	"fmt"

	"exaresil/internal/cluster"
	"exaresil/internal/units"
)

// CheckCluster validates the outcome ledger of one cluster run against the
// contracts the cluster layer promises: every application's fate must be
// consistent with its timestamps, the aggregate counters must decompose
// exactly, and the node-seconds actually occupied can never exceed the
// machine's capacity over the run. The context string labels any violations
// (e.g. "fcfs/cr seed=3"). Like the trace Checker, it only reports; it
// never mutates the metrics.
func CheckCluster(context string, spec cluster.Spec, m cluster.Metrics) []Violation {
	var vs []Violation
	bad := func(t units.Duration, format string, args ...any) {
		vs = append(vs, Violation{Context: context, Time: t, Msg: fmt.Sprintf(format, args...)})
	}

	if len(m.Results) != m.Total {
		bad(0, "ledger holds %d results for %d applications", len(m.Results), m.Total)
	}
	if m.Completed+m.Dropped != m.Total {
		bad(0, "completed %d + dropped %d != total %d", m.Completed, m.Dropped, m.Total)
	}
	if m.DroppedQueued+m.DroppedRunning != m.Dropped {
		bad(0, "dropped decomposition %d + %d != %d", m.DroppedQueued, m.DroppedRunning, m.Dropped)
	}
	if m.PeakUtilization < 0 || m.PeakUtilization > 1 {
		bad(0, "peak utilization %v outside [0, 1]", m.PeakUtilization)
	}
	if m.AvgUtilization < 0 || m.AvgUtilization > m.PeakUtilization {
		bad(0, "average utilization %v outside [0, peak=%v]", m.AvgUtilization, m.PeakUtilization)
	}

	// nodeSeconds integrates PhysNodes x residency over every application
	// that ever occupied the machine (completions and dropped-running both
	// hold their nodes until End).
	var nodeSeconds float64
	counts := map[cluster.Outcome]int{}
	for _, r := range m.Results {
		id := r.App.ID
		counts[r.Outcome]++

		if r.Waited() < 0 {
			bad(r.End, "app %d: negative wait %v", id, r.Waited())
		}
		if r.End > m.MakespanEnd {
			bad(r.End, "app %d: ends after the recorded makespan end %v", id, m.MakespanEnd)
		}
		if r.Started {
			if r.Start < r.App.Arrival {
				bad(r.Start, "app %d: started %v before its arrival %v", id, r.Start, r.App.Arrival)
			}
			if r.End <= r.Start {
				bad(r.End, "app %d: started at %v but ended at %v", id, r.Start, r.End)
			}
			if r.PhysNodes < r.App.Nodes {
				bad(r.Start, "app %d: occupied %d nodes, fewer than its %d logical nodes",
					id, r.PhysNodes, r.App.Nodes)
			}
			nodeSeconds += float64(r.PhysNodes) * float64(r.End-r.Start)
		}

		switch r.Outcome {
		case cluster.OutcomeCompleted:
			if !r.Started {
				bad(r.End, "app %d: completed without ever starting", id)
			}
			if r.App.Deadline > 0 && r.End > r.App.Deadline {
				bad(r.End, "app %d: completed at %v, after its deadline %v", id, r.End, r.App.Deadline)
			}
		case cluster.OutcomeDroppedRunning:
			if !r.Started {
				bad(r.End, "app %d: dropped-running without ever starting", id)
			}
			if r.App.Deadline > 0 && r.End != r.App.Deadline {
				bad(r.End, "app %d: dropped while running at %v, not at its deadline %v",
					id, r.End, r.App.Deadline)
			}
		case cluster.OutcomeDroppedQueued:
			if r.Started {
				bad(r.End, "app %d: dropped-queued but marked as started", id)
			}
		default:
			bad(r.End, "app %d: unknown outcome %v", id, r.Outcome)
		}
	}

	if counts[cluster.OutcomeCompleted] != m.Completed {
		bad(0, "ledger has %d completions, counters say %d", counts[cluster.OutcomeCompleted], m.Completed)
	}
	if counts[cluster.OutcomeDroppedQueued] != m.DroppedQueued {
		bad(0, "ledger has %d queued drops, counters say %d", counts[cluster.OutcomeDroppedQueued], m.DroppedQueued)
	}
	if counts[cluster.OutcomeDroppedRunning] != m.DroppedRunning {
		bad(0, "ledger has %d running drops, counters say %d", counts[cluster.OutcomeDroppedRunning], m.DroppedRunning)
	}

	// Applications can only occupy nodes the machine has: the integral of
	// occupancy over the run is bounded by full utilization of every node
	// from time zero to the last departure. The small relative slack
	// absorbs float64 rounding in the summation, nothing more.
	capacity := float64(spec.Machine.Nodes) * float64(m.MakespanEnd)
	if nodeSeconds > capacity*(1+1e-9) {
		bad(m.MakespanEnd, "applications occupied %.0f node-minutes, machine capacity is %.0f",
			nodeSeconds/float64(units.Minute), capacity/float64(units.Minute))
	}
	return vs
}

package check

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"exaresil/internal/analytic"
	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/obs"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/stats"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// Tolerance bounds the allowed divergence between the analytic prediction
// and the Monte-Carlo mean of one sweep cell.
type Tolerance struct {
	// AbsEff is the absolute efficiency slack. The analytic models are
	// first-order in the failure rate, so they drift from the simulator as
	// lambda*(tau+C) grows; the in-package agreement tests use 0.02-0.10
	// across the same regimes.
	AbsEff float64
	// CIMult widens the band by this many 95% confidence half-widths of
	// the simulated mean, so small-trial sweeps do not flag sampling noise.
	CIMult float64
	// Collapse is the efficiency below which a cell counts as collapsed.
	// In collapse regimes the first-order models clamp to zero while the
	// simulator reports a small positive residual (or vice versa); two
	// collapsed verdicts agree even when their values differ.
	Collapse float64
}

// DefaultTolerance matches the calibration of the analytic package's
// agreement tests, widened for the harsher corners this sweep visits.
func DefaultTolerance() Tolerance {
	return Tolerance{AbsEff: 0.10, CIMult: 3, Collapse: 0.12}
}

// Sweep configures a conformance sweep over the parameter grid
// (checkpoint costs x failure rates x node counts x techniques).
// Checkpoint costs enter through the application class (memory per node
// sets every level's cost), failure rates through the component MTBF.
type Sweep struct {
	// Machine is the platform (default: the paper's exascale machine).
	Machine machine.Config
	// PMF is the failure-severity distribution.
	PMF failures.SeverityPMF
	// Resilience carries the technique parameters.
	Resilience resilience.Config
	// MTBFs is the failure-rate axis (default 10y and 2.5y, the paper's
	// baseline and sensitivity values).
	MTBFs []units.Duration
	// Classes is the checkpoint-cost axis (default A32 and D64, the
	// extremes of Table I).
	Classes []workload.Class
	// Fractions is the node-count axis, as machine fractions.
	Fractions []float64
	// Techniques defaults to the full seven-technique menu.
	Techniques []core.Technique
	// TimeSteps is T_S per application (default 1440).
	TimeSteps int
	// Trials is the Monte-Carlo repetition count per cell (default 30).
	Trials int
	// Paired switches each cell's trials to the variance-reduced scheme
	// the selection layer uses (PairedTrials): trial 2k and 2k+1 share the
	// cell-keyed substream rng.SubStream(Seed, cell, k), the odd member
	// with mirrored continuous draws. The analytic prediction is
	// unchanged, so a passing paired sweep certifies that antithetic
	// pairing stays inside the same conformance bands as independent
	// sampling. An odd Trials count leaves the last trial unpaired.
	Paired bool
	// Seed drives all randomness.
	Seed uint64
	// Tol bounds sim-vs-analytic divergence.
	Tol Tolerance
	// Workers bounds cell-level parallelism (default: serial execution;
	// cells are deterministic either way).
	Workers int
}

// DefaultSweep is the grid exacheck runs: 2 MTBFs x 2 classes x 4 sizes x
// 7 techniques = 112 cells (the paper's five plus the post-2017 ReStore
// and TeaMPI extensions).
func DefaultSweep() Sweep {
	return Sweep{
		Machine:    machine.Exascale(),
		PMF:        failures.DefaultSeverityPMF(),
		Resilience: resilience.DefaultConfig(),
		MTBFs:      []units.Duration{10 * units.Year, units.Duration(2.5) * units.Year},
		Classes:    []workload.Class{workload.A32, workload.D64},
		Fractions:  []float64{0.01, 0.10, 0.50, 1.00},
		Techniques: core.Techniques(),
		TimeSteps:  1440,
		Trials:     30,
		Seed:       20170529,
		Tol:        DefaultTolerance(),
	}
}

// Cell is one grid point's verdict.
type Cell struct {
	Technique core.Technique
	Class     string
	Fraction  float64
	Nodes     int
	MTBF      units.Duration
	// Viable reports whether the executor could run at all.
	Viable bool
	// Analytic is the closed-form expected efficiency; Sim summarizes the
	// Monte-Carlo efficiencies.
	Analytic float64
	Sim      stats.Summary
	// OK is the conformance verdict; Detail explains a failure.
	OK     bool
	Detail string
}

// Label renders the cell's coordinates for reports and violations.
func (c Cell) Label() string {
	return fmt.Sprintf("%v/%s/%dn/%s", c.Technique, c.Class, c.Nodes, c.MTBF)
}

// Report aggregates a full audit: the conformance cells, every runtime
// invariant violation observed in their traces, the metamorphic failures,
// and the metrics-vs-trace reconciliation failures.
type Report struct {
	Cells       []Cell
	Violations  []Violation
	Metamorphic []string
	// MetricsChecks lists per-technique disagreements between the sweep's
	// obs registry (fed by the engine's metrics hooks) and the same totals
	// derived independently from traces and Results.
	MetricsChecks []string
}

// ConformanceFailures counts cells whose sim-vs-analytic comparison failed.
func (r *Report) ConformanceFailures() int {
	n := 0
	for _, c := range r.Cells {
		if !c.OK {
			n++
		}
	}
	return n
}

// OK reports a clean audit.
func (r *Report) OK() bool {
	return r.ConformanceFailures() == 0 && len(r.Violations) == 0 &&
		len(r.Metamorphic) == 0 && len(r.MetricsChecks) == 0
}

// Write renders the report.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "conformance: %d cells, %d failures\n", len(r.Cells), r.ConformanceFailures())
	for _, c := range r.Cells {
		status := "ok"
		if !c.OK {
			status = "FAIL " + c.Detail
		}
		viable := ""
		if !c.Viable {
			viable = " (not viable)"
		}
		fmt.Fprintf(w, "  %-40s analytic %.4f  sim %.4f ±%.4f%s  %s\n",
			c.Label(), c.Analytic, c.Sim.Mean, c.Sim.CI95, viable, status)
	}
	fmt.Fprintf(w, "invariants: %d violations\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  %s\n", v)
	}
	fmt.Fprintf(w, "metamorphic: %d failures\n", len(r.Metamorphic))
	for _, m := range r.Metamorphic {
		fmt.Fprintf(w, "  %s\n", m)
	}
	fmt.Fprintf(w, "metrics: %d reconciliation failures\n", len(r.MetricsChecks))
	for _, m := range r.MetricsChecks {
		fmt.Fprintf(w, "  %s\n", m)
	}
}

func (s Sweep) withDefaults() Sweep {
	d := DefaultSweep()
	if s.Machine.Name == "" {
		s.Machine = d.Machine
	}
	if s.PMF == (failures.SeverityPMF{}) {
		s.PMF = d.PMF
	}
	if s.Resilience == (resilience.Config{}) {
		s.Resilience = d.Resilience
	}
	if s.MTBFs == nil {
		s.MTBFs = d.MTBFs
	}
	if s.Classes == nil {
		s.Classes = d.Classes
	}
	if s.Fractions == nil {
		s.Fractions = d.Fractions
	}
	if s.Techniques == nil {
		s.Techniques = d.Techniques
	}
	if s.TimeSteps == 0 {
		s.TimeSteps = d.TimeSteps
	}
	if s.Trials == 0 {
		s.Trials = d.Trials
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	if s.Tol == (Tolerance{}) {
		s.Tol = d.Tol
	}
	return s
}

// cellSpec is one grid point before evaluation.
type cellSpec struct {
	tech  core.Technique
	class workload.Class
	frac  float64
	mtbf  units.Duration
}

// Run executes the sweep. Cells are evaluated independently (in parallel
// when Workers > 1) but each cell's trials run sequentially on one checked
// executor, so the report is deterministic for a given spec.
func (s Sweep) Run() (*Report, error) {
	s = s.withDefaults()
	if err := s.Machine.Validate(); err != nil {
		return nil, err
	}
	if err := s.Resilience.Validate(); err != nil {
		return nil, err
	}

	var specs []cellSpec
	for _, mtbf := range s.MTBFs {
		for _, class := range s.Classes {
			for _, frac := range s.Fractions {
				for _, tech := range s.Techniques {
					specs = append(specs, cellSpec{tech: tech, class: class, frac: frac, mtbf: mtbf})
				}
			}
		}
	}

	workers := s.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	// Every cell's executor feeds one shared obs registry; the per-cell
	// expected totals (derived independently from traces and Results) are
	// folded per technique afterwards and reconciled against it.
	reg := obs.NewRegistry()
	rm := resilience.NewMetrics(reg)

	cells := make([]Cell, len(specs))
	violations := make([][]Violation, len(specs))
	totals := make([]phaseTotals, len(specs))
	errs := make([]error, len(specs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(specs)) {
					return
				}
				cells[i], violations[i], totals[i], errs[i] = s.runCell(specs[i], uint64(i), rm)
			}
		}()
	}
	wg.Wait()

	rep := &Report{Cells: cells}
	perTech := make(map[core.Technique]*phaseTotals)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("check: cell %s: %w", cells[i].Label(), err)
		}
		rep.Violations = append(rep.Violations, violations[i]...)
		t, ok := perTech[specs[i].tech]
		if !ok {
			t = &phaseTotals{}
			perTech[specs[i].tech] = t
		}
		t.add(totals[i])
	}
	rep.MetricsChecks = reconcileMetrics(reg, perTech)
	rep.Metamorphic = s.metamorphic()
	return rep, nil
}

// phaseTotals accumulates the metric values one technique's runs are
// expected to have produced, derived from trace splits and Results rather
// than from the metrics hooks themselves.
type phaseTotals struct {
	runs, completions, failures, rollbacks uint64
	severities                             [4]uint64
	// Time phases in simulated minutes, matching the label values of
	// exaresil_resilience_time_minutes_total.
	checkpoint, restore, relaunch, rework, useful float64
}

// add folds another cell's totals in.
func (t *phaseTotals) add(o phaseTotals) {
	t.runs += o.runs
	t.completions += o.completions
	t.failures += o.failures
	t.rollbacks += o.rollbacks
	for i := range t.severities {
		t.severities[i] += o.severities[i]
	}
	t.checkpoint += o.checkpoint
	t.restore += o.restore
	t.relaunch += o.relaunch
	t.rework += o.rework
	t.useful += o.useful
}

// observe folds one run into the expected totals: counts and rework/useful
// from the Result, the blocking-phase times from the trace-derived split
// (the independent ledger).
func (t *phaseTotals) observe(res resilience.Result, split PhaseSplit, severities [4]int) {
	t.runs++
	if res.Completed {
		t.completions++
	}
	t.failures += uint64(res.Failures)
	t.rollbacks += uint64(res.Rollbacks)
	for i := range severities {
		t.severities[i] += uint64(severities[i])
	}
	t.checkpoint += split.Checkpoint.Minutes()
	t.restore += (split.Restore - split.Relaunch).Minutes()
	t.relaunch += split.Relaunch.Minutes()
	t.rework += res.ReworkTime.Minutes()
	if useful := res.Makespan() - res.CheckpointTime - res.RestartTime - res.ReworkTime; useful > 0 {
		t.useful += useful.Minutes()
	}
}

// runCell evaluates one grid point: Trials checked simulation runs and the
// analytic prediction.
func (s Sweep) runCell(spec cellSpec, index uint64, rm *resilience.Metrics) (Cell, []Violation, phaseTotals, error) {
	cfg := s.Machine.WithMTBF(spec.mtbf)
	model, err := failures.NewModel(spec.mtbf, s.PMF)
	if err != nil {
		return Cell{}, nil, phaseTotals{}, err
	}
	app := workload.App{
		Class:     spec.class,
		TimeSteps: s.TimeSteps,
		Nodes:     cfg.NodesForFraction(spec.frac),
	}
	cell := Cell{
		Technique: spec.tech,
		Class:     spec.class.Name,
		Fraction:  spec.frac,
		Nodes:     app.Nodes,
		MTBF:      spec.mtbf,
	}

	cell.Analytic, err = analytic.Efficiency(spec.tech, app, cfg, model, s.Resilience)
	if err != nil {
		return cell, nil, phaseTotals{}, err
	}

	x, err := resilience.New(spec.tech, app, cfg, model, s.Resilience)
	if err != nil {
		return cell, nil, phaseTotals{}, err
	}
	cell.Viable, _ = x.Viable()

	checker := NewChecker(x)
	resilience.Observe(x, checker.Observe)
	resilience.Instrument(x, rm)
	horizon := units.Duration(float64(app.Baseline()) * 100)
	var eff stats.Accumulator
	var totals phaseTotals
	var src rng.Source
	for trial := 0; trial < s.Trials; trial++ {
		if s.Paired {
			src.SetSubStream(s.Seed, index, uint64(trial)/2)
			src.SetMirror(trial%2 == 1)
		} else {
			// Bit-identical to the historical rng.Stream derivation.
			src.SetStream(s.Seed^(index*0x9e3779b97f4a7c15), uint64(trial))
		}
		checker.BeginRun(fmt.Sprintf("%s trial %d", cell.Label(), trial))
		res := x.Run(0, horizon, &src)
		checker.FinishRun(res)
		eff.Add(res.Efficiency())
		if res.Blocked == "" {
			// Blocked runs never reach the engine, so the metrics hooks
			// never saw them either.
			totals.observe(res, checker.RunSplit(), checker.RunSeverities())
		}
	}
	cell.Sim = eff.Summarize()

	cell.OK, cell.Detail = s.verdict(cell)
	return cell, checker.Violations(), totals, nil
}

// verdict compares the analytic prediction against the simulated mean.
func (s Sweep) verdict(c Cell) (bool, string) {
	if !c.Viable {
		// A non-viable executor scores zero identically; the analytic model
		// must agree that the regime collapsed.
		if c.Analytic <= s.Tol.Collapse {
			return true, ""
		}
		return false, fmt.Sprintf("analytic %.4f for a non-viable cell", c.Analytic)
	}
	band := s.Tol.AbsEff + s.Tol.CIMult*c.Sim.CI95
	if diff := math.Abs(c.Analytic - c.Sim.Mean); diff <= band {
		return true, ""
	}
	if c.Analytic <= s.Tol.Collapse && c.Sim.Mean <= s.Tol.Collapse {
		// Both sides call the regime collapsed; their residuals differ only
		// in how fast they approach zero.
		return true, ""
	}
	return false, fmt.Sprintf("analytic %.4f vs sim %.4f exceeds band %.4f",
		c.Analytic, c.Sim.Mean, s.Tol.AbsEff+s.Tol.CIMult*c.Sim.CI95)
}

// reconcileMetrics compares the obs registry the sweep's executors fed
// against the per-technique totals derived independently from traces and
// Results. The two ledgers observe the same runs through different code
// paths (engine hooks vs. trace mirror), so any disagreement beyond
// float-summation drift is a bug in one of them.
func reconcileMetrics(reg *obs.Registry, want map[core.Technique]*phaseTotals) []string {
	// Index the snapshot by (family, technique, extra-label signature).
	snap := map[string]float64{}
	for _, m := range reg.Snapshot() {
		key := m.Name
		for _, lk := range []string{"technique", "phase", "severity"} {
			if v, ok := m.Labels[lk]; ok {
				key += "|" + lk + "=" + v
			}
		}
		snap[key] = m.Value
	}

	var fails []string
	techs := make([]core.Technique, 0, len(want))
	for t := range want {
		techs = append(techs, t)
	}
	sort.Slice(techs, func(i, j int) bool { return techs[i] < techs[j] })

	for _, tech := range techs {
		w := want[tech]
		lbl := resilience.TechLabel(tech)
		series := func(name, extra string) float64 {
			return snap[name+"|technique="+lbl+extra]
		}
		checkCount := func(name, extra string, wantV uint64) {
			if got := series(name, extra); got != float64(wantV) {
				fails = append(fails, fmt.Sprintf("%v: %s%s = %g, trace-derived total %d", tech, name, extra, got, wantV))
			}
		}
		checkCount("exaresil_resilience_runs_total", "", w.runs)
		checkCount("exaresil_resilience_completions_total", "", w.completions)
		checkCount("exaresil_resilience_failures_total", "", w.failures)
		checkCount("exaresil_resilience_rollbacks_total", "", w.rollbacks)
		for sev := 1; sev <= 3; sev++ {
			checkCount("exaresil_resilience_failures_by_severity_total",
				fmt.Sprintf("|severity=%d", sev), w.severities[sev])
		}
		checkTime := func(phase string, wantV float64) {
			got := series("exaresil_resilience_time_minutes_total", "|phase="+phase)
			// The metric and the expectation sum the same per-run values in
			// different orders (parallel cells share a series), so allow
			// float-summation drift proportional to the magnitude.
			tol := 1e-9*math.Abs(wantV) + 1e-6
			if math.Abs(got-wantV) > tol {
				fails = append(fails, fmt.Sprintf("%v: time[%s] = %g min, trace-derived total %g min", tech, phase, got, wantV))
			}
		}
		checkTime(resilience.PhaseCheckpoint, w.checkpoint)
		checkTime(resilience.PhaseRestore, w.restore)
		checkTime(resilience.PhaseRelaunch, w.relaunch)
		checkTime(resilience.PhaseRework, w.rework)
		checkTime(resilience.PhaseUseful, w.useful)
	}
	return fails
}

// SortCells orders the report's cells for stable rendering (parallel
// evaluation preserves index order already; this is for merged reports).
func SortCells(cells []Cell) {
	sort.SliceStable(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.MTBF != b.MTBF {
			return a.MTBF > b.MTBF
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Fraction != b.Fraction {
			return a.Fraction < b.Fraction
		}
		return a.Technique < b.Technique
	})
}

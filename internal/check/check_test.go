package check

import (
	"strings"
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/failures"
	"exaresil/internal/machine"
	"exaresil/internal/resilience"
	"exaresil/internal/rng"
	"exaresil/internal/stats"
	"exaresil/internal/units"
	"exaresil/internal/workload"
)

// TestCheckerAcceptsRealTraces runs every technique at a failure-heavy
// operating point under the checker: genuine engine traces must satisfy
// every invariant.
func TestCheckerAcceptsRealTraces(t *testing.T) {
	cfg := machine.Exascale().WithMTBF(units.Duration(2.5) * units.Year)
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	app := workload.App{Class: workload.C64, TimeSteps: 1440, Nodes: 12000}
	for _, tech := range core.Techniques() {
		x, err := resilience.New(tech, app, cfg, model, resilience.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		c := NewChecker(x)
		if !resilience.Observe(x, c.Observe) {
			t.Fatalf("%v executor rejected the observer", tech)
		}
		for trial := uint64(0); trial < 8; trial++ {
			c.BeginRun("trial")
			res := x.Run(0, units.Duration(float64(app.Baseline())*100), rng.Stream(7, trial))
			c.FinishRun(res)
		}
		for _, v := range c.Violations() {
			t.Errorf("%v: %s", tech, v)
		}
	}
}

// TestCheckerAcceptsTruncatedRuns covers horizon-truncated (incomplete)
// executions, which end mid-phase.
func TestCheckerAcceptsTruncatedRuns(t *testing.T) {
	cfg := machine.Exascale().WithMTBF(units.Duration(2.5) * units.Year)
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	app := workload.App{Class: workload.D64, TimeSteps: 1440, Nodes: cfg.Nodes}
	x, err := resilience.New(core.CheckpointRestart, app, cfg, model, resilience.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(x)
	resilience.Observe(x, c.Observe)
	c.BeginRun("truncated")
	res := x.Run(0, units.Duration(float64(app.Baseline())*3), rng.New(1))
	if res.Completed {
		t.Fatal("expected a truncated run at exascale/2.5y")
	}
	c.FinishRun(res)
	for _, v := range c.Violations() {
		t.Error(v)
	}
}

// synthetic builds a checker for hand-crafted event streams.
func synthetic(t *testing.T, tech core.Technique) *Checker {
	t.Helper()
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	app := workload.App{Class: workload.C64, TimeSteps: 1000, Nodes: 1200}
	x, err := resilience.New(tech, app, cfg, model, resilience.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(x)
	c.BeginRun("synthetic")
	return c
}

func ev(kind resilience.TraceKind, at, progress units.Duration) resilience.TraceEvent {
	return resilience.TraceEvent{Kind: kind, Time: at, Progress: progress}
}

func wantViolation(t *testing.T, c *Checker, substr string) {
	t.Helper()
	for _, v := range c.Violations() {
		if strings.Contains(v.Msg, substr) {
			return
		}
	}
	t.Errorf("no violation containing %q; got %v", substr, c.Violations())
}

func TestCheckerFlagsTimeBackwards(t *testing.T) {
	c := synthetic(t, core.CheckpointRestart)
	c.Observe(ev(resilience.TraceStart, 100, 0))
	c.Observe(ev(resilience.TraceFailure, 50, 10))
	wantViolation(t, c, "time ran backwards")
}

func TestCheckerFlagsProgressBackwards(t *testing.T) {
	c := synthetic(t, core.CheckpointRestart)
	c.Observe(ev(resilience.TraceStart, 0, 0))
	ck := ev(resilience.TraceCheckpointStart, 60, 60)
	ck.Level = 3
	c.Observe(ck)
	ck.Kind = resilience.TraceCheckpointEnd
	ck.Time = 70
	c.Observe(ck)
	// Progress drops without any rollback in between.
	next := ev(resilience.TraceCheckpointStart, 100, 30)
	next.Level = 3
	c.Observe(next)
	wantViolation(t, c, "progress ran backwards")
}

func TestCheckerFlagsRestoreAboveCheckpoint(t *testing.T) {
	c := synthetic(t, core.CheckpointRestart)
	c.Observe(ev(resilience.TraceStart, 0, 0))
	ck := ev(resilience.TraceCheckpointStart, 60, 60)
	ck.Level = 3
	c.Observe(ck)
	ck.Kind = resilience.TraceCheckpointEnd
	ck.Time = 75
	c.Observe(ck)
	fail := ev(resilience.TraceFailure, 100, 80)
	fail.Severity = failures.SeverityNodeLoss
	fail.Rollback = true
	c.Observe(fail)
	// Restores to 80 — above the committed snapshot of 60.
	restart := ev(resilience.TraceRestartEnd, 110, 80)
	restart.Level = 3
	c.Observe(restart)
	wantViolation(t, c, "want committed checkpoint")
}

func TestCheckerFlagsResurrectedCheckpoint(t *testing.T) {
	// Multilevel: a severity-2 failure destroys the level-1 checkpoint;
	// restoring from it afterwards is a resurrection.
	c := synthetic(t, core.MultilevelCheckpoint)
	c.Observe(ev(resilience.TraceStart, 0, 0))
	ck := ev(resilience.TraceCheckpointStart, 30, 30)
	ck.Level = 1
	c.Observe(ck)
	ck.Kind = resilience.TraceCheckpointEnd
	ck.Time = 31
	c.Observe(ck)
	fail := ev(resilience.TraceFailure, 40, 40)
	fail.Severity = failures.SeverityNodeLoss
	fail.Rollback = true
	c.Observe(fail)
	restart := ev(resilience.TraceRestartEnd, 50, 30)
	restart.Level = 1
	c.Observe(restart)
	wantViolation(t, c, "severity")
}

func TestCheckerFlagsScratchRestartWithProgress(t *testing.T) {
	c := synthetic(t, core.MultilevelCheckpoint)
	c.Observe(ev(resilience.TraceStart, 0, 0))
	fail := ev(resilience.TraceFailure, 40, 40)
	fail.Severity = failures.SeverityTransient
	fail.Rollback = true
	c.Observe(fail)
	restart := ev(resilience.TraceRestartEnd, 50, 25)
	restart.Level = 0
	c.Observe(restart)
	wantViolation(t, c, "from-scratch restart resumed")
}

func TestCheckerFlagsWrongLevelForTechnique(t *testing.T) {
	c := synthetic(t, core.ParallelRecovery)
	c.Observe(ev(resilience.TraceStart, 0, 0))
	ck := ev(resilience.TraceCheckpointStart, 30, 30)
	ck.Level = 3 // PR checkpoints live in remote memory (level 2)
	c.Observe(ck)
	wantViolation(t, c, "outside the technique's hierarchy")
}

func TestCheckerFlagsResultMismatch(t *testing.T) {
	cfg := machine.Exascale()
	model := failures.MustModel(cfg.MTBF, failures.DefaultSeverityPMF())
	app := workload.App{Class: workload.B32, TimeSteps: 1440, Nodes: 1200}
	x, err := resilience.New(core.CheckpointRestart, app, cfg, model, resilience.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(x)
	resilience.Observe(x, c.Observe)
	c.BeginRun("doctored")
	res := x.Run(0, units.Duration(float64(app.Baseline())*100), rng.New(3))
	doctored := res
	doctored.Failures++
	doctored.Checkpoints[3]++
	c.FinishRun(doctored)
	wantViolation(t, c, "failures")
	wantViolation(t, c, "checkpoints")
}

func TestCheckerFlagsCompletionShortfall(t *testing.T) {
	c := synthetic(t, core.CheckpointRestart)
	c.Observe(ev(resilience.TraceStart, 0, 0))
	c.Observe(ev(resilience.TraceComplete, 900, 900))
	c.FinishRun(resilience.Result{
		Technique:     core.CheckpointRestart,
		Completed:     true,
		End:           900,
		Baseline:      1000 * units.Minute,
		EffectiveWork: 1000 * units.Minute,
	})
	wantViolation(t, c, "want effective work")
}

// TestSweepSmallGridClean is the harness's own conformance smoke: a small
// grid must produce zero conformance failures, zero invariant violations,
// and zero metamorphic failures.
func TestSweepSmallGridClean(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is Monte-Carlo heavy")
	}
	s := Sweep{
		MTBFs:     []units.Duration{10 * units.Year},
		Classes:   []workload.Class{workload.A32, workload.D64},
		Fractions: []float64{0.01, 0.10},
		Trials:    15,
		Workers:   4,
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		var b strings.Builder
		rep.Write(&b)
		t.Fatalf("audit not clean:\n%s", b.String())
	}
	if len(rep.Cells) != 1*2*2*7 {
		t.Errorf("expected 28 cells, got %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Sim.N != 15 {
			t.Errorf("%s: %d trials, want 15", c.Label(), c.Sim.N)
		}
	}
}

func TestVerdictCollapseRegime(t *testing.T) {
	s := DefaultSweep()
	// Both collapsed: residuals may differ arbitrarily within the regime.
	c := Cell{Viable: true, Analytic: 0, Sim: statsSummary(0.03, 0.001)}
	if ok, detail := s.verdict(c); !ok {
		t.Errorf("collapsed pair flagged: %s", detail)
	}
	// Analytic collapsed but the simulator is healthy: a real divergence.
	c = Cell{Viable: true, Analytic: 0, Sim: statsSummary(0.8, 0.001)}
	if ok, _ := s.verdict(c); ok {
		t.Error("healthy sim vs collapsed analytic passed")
	}
	// Non-viable cell: analytic must agree the regime is dead.
	c = Cell{Viable: false, Analytic: 0.9}
	if ok, _ := s.verdict(c); ok {
		t.Error("non-viable cell with healthy analytic prediction passed")
	}
	c = Cell{Viable: false, Analytic: 0}
	if ok, _ := s.verdict(c); !ok {
		t.Error("non-viable cell with collapsed analytic flagged")
	}
}

func statsSummary(mean, ci float64) stats.Summary {
	return stats.Summary{N: 30, Mean: mean, CI95: ci}
}

package mesh

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// AdmissionPolicy is the mesh's first pipeline stage: it decides whether
// a submission enters routing at all, before any replica is consulted.
// This is fleet-level backpressure, distinct from the per-replica shard
// queues — a rejected submission costs the mesh nothing downstream.
type AdmissionPolicy interface {
	// Admit reports whether a submission arriving at now proceeds; when
	// it must not, retryAfter suggests the client's backoff (the HTTP
	// layer floors it at one second — "retry now" storms are the exact
	// failure mode admission exists to prevent).
	Admit(now time.Time) (ok bool, retryAfter time.Duration)
	// Name labels the policy in metrics and health output.
	Name() string
}

// AlwaysAdmit passes every submission through to routing (the default).
func AlwaysAdmit() AdmissionPolicy { return alwaysAdmit{} }

type alwaysAdmit struct{}

func (alwaysAdmit) Admit(time.Time) (bool, time.Duration) { return true, 0 }
func (alwaysAdmit) Name() string                          { return "always" }

// RejectAll refuses every submission — the load-shedding kill switch for
// drills and for fencing a mesh off during incident response.
func RejectAll() AdmissionPolicy { return rejectAll{} }

type rejectAll struct{}

func (rejectAll) Admit(time.Time) (bool, time.Duration) { return false, time.Second }
func (rejectAll) Name() string                          { return "reject-all" }

// tokenBucket admits rate submissions per second with a burst allowance,
// refilling on demand (no background goroutine).
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// TokenBucket builds a token-bucket policy admitting rate submissions
// per second with bursts up to burst. Invalid parameters are clamped to
// a minimal working bucket (1/s, burst 1).
func TokenBucket(rate float64, burst int) AdmissionPolicy {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		rate = 1
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b}
}

func (tb *tokenBucket) Admit(now time.Time) (bool, time.Duration) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if !tb.last.IsZero() {
		if elapsed := now.Sub(tb.last).Seconds(); elapsed > 0 {
			tb.tokens = math.Min(tb.burst, tb.tokens+elapsed*tb.rate)
		}
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	need := (1 - tb.tokens) / tb.rate
	return false, time.Duration(need * float64(time.Second))
}

func (tb *tokenBucket) Name() string { return "token-bucket" }

// ParseAdmission resolves the -admission flag vocabulary: "always",
// "reject-all", or "token-bucket" (parameterized by rate and burst).
func ParseAdmission(name string, rate float64, burst int) (AdmissionPolicy, error) {
	switch name {
	case "", "always":
		return AlwaysAdmit(), nil
	case "reject-all":
		return RejectAll(), nil
	case "token-bucket":
		return TokenBucket(rate, burst), nil
	default:
		return nil, fmt.Errorf("mesh: unknown admission policy %q (want always, reject-all, or token-bucket)", name)
	}
}

package mesh

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"exaresil/internal/obs"
)

// Metrics is the coordinator's obs surface (exaresil_mesh_*). Replica
// internals keep their exaresil_serve_* families on per-replica
// registries; GET /metrics merges both views, tagging replica series
// with a replica label (see writeReplicaProm).
type Metrics struct {
	reg *obs.Registry

	Admitted     *obs.Counter // submissions past the admission stage
	Rejected     *obs.Counter // submissions refused by the admission policy
	Spills       *obs.Counter // submissions that fell past their first-choice replica
	Exhausted    *obs.Counter // submissions no live replica would take
	Failovers    *obs.Counter // replicas declared dead by the heartbeat monitor
	Revivals     *obs.Counter // replicas brought back with a fresh generation
	Rerouted     *obs.Counter // orphaned jobs resubmitted to survivors
	HandoffCells *obs.Counter // checkpoint cells carried to survivors during failover
}

// NewMetrics registers the mesh families on r (nil = disabled).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		reg:          r,
		Admitted:     r.Counter("exaresil_mesh_admission_total", "admission-stage outcomes", obs.L("outcome", "admitted")),
		Rejected:     r.Counter("exaresil_mesh_admission_total", "admission-stage outcomes", obs.L("outcome", "rejected")),
		Spills:       r.Counter("exaresil_mesh_spills_total", "submissions routed past a rejecting first-choice replica"),
		Exhausted:    r.Counter("exaresil_mesh_exhausted_total", "submissions rejected because every live replica refused"),
		Failovers:    r.Counter("exaresil_mesh_failovers_total", "replicas declared dead by missed heartbeats"),
		Revivals:     r.Counter("exaresil_mesh_revivals_total", "replica revivals (fresh generation, prewarmed snapshots)"),
		Rerouted:     r.Counter("exaresil_mesh_rerouted_jobs_total", "orphaned jobs resubmitted to surviving replicas"),
		HandoffCells: r.Counter("exaresil_mesh_handoff_cells_total", "checkpoint cells handed from dead replicas to survivors"),
	}
}

// Routed is the per-replica routed-submissions counter.
func (m *Metrics) Routed(idx int) *obs.Counter {
	return m.reg.Counter("exaresil_mesh_routed_total", "submissions delivered to each replica",
		obs.L("replica", strconv.Itoa(idx)))
}

// ReplicaUp is the per-replica liveness gauge (1 alive, 0 dead).
func (m *Metrics) ReplicaUp(idx int) *obs.Gauge {
	return m.reg.Gauge("exaresil_mesh_replica_up", "replica liveness as seen by the heartbeat monitor",
		obs.L("replica", strconv.Itoa(idx)))
}

// writeReplicaProm renders one replica registry's snapshot in the
// Prometheus text format with a replica="<idx>" label injected into
// every series, so the merged /metrics keeps per-replica attribution
// without the replicas sharing a registry (shared gauges would clobber
// each other).
func writeReplicaProm(w io.Writer, idx int, snap []obs.MetricSnapshot) error {
	replica := strconv.Itoa(idx)
	prevName := ""
	for _, s := range snap {
		if s.Name != prevName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			prevName = s.Name
		}
		switch s.Kind {
		case "histogram":
			for _, b := range s.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name,
					promLabels(s.Labels, replica, "le", b.UpperBound), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name,
				promLabels(s.Labels, replica), strconv.FormatFloat(s.Sum, 'g', -1, 64)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels, replica), s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name,
				promLabels(s.Labels, replica), strconv.FormatFloat(s.Value, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabels renders {replica="N",sorted labels...}, with extra
// name/value pairs appended last (the histogram le label).
func promLabels(labels map[string]string, replica string, extra ...string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := `{replica="` + replica + `"`
	for _, k := range keys {
		out += `,` + k + `="` + labels[k] + `"`
	}
	for i := 0; i+1 < len(extra); i += 2 {
		out += `,` + extra[i] + `="` + extra[i+1] + `"`
	}
	return out + "}"
}

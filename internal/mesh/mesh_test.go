package mesh

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"exaresil/internal/experiments"
	"exaresil/internal/obs"
	"exaresil/internal/serve"
)

// goldenDigest looks up one pinned digest from the golden manifest.
func goldenDigest(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile("../../results/golden/manifest.txt")
	if err != nil {
		t.Fatalf("read golden manifest: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] == name {
			return fields[0]
		}
	}
	t.Fatalf("no golden digest for %q", name)
	return ""
}

// newTestMesh builds a coordinator and registers a bounded drain.
func newTestMesh(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("mesh.New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = c.Drain(ctx)
	})
	return c
}

// waitMeshDone polls the coordinator until id (following any forwards)
// reaches the done state. During a failover window the id may 404 or
// transiently read as failed on the dying replica — both resolve once
// the forward to the rerouted job lands, so the poll only gives up at
// the deadline.
func waitMeshDone(t *testing.T, c *Coordinator, id string, timeout time.Duration) serve.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last serve.JobView
	var seen bool
	for time.Now().Before(deadline) {
		view, ok := c.Job(id)
		if ok {
			last, seen = view, true
			if view.State == "done" {
				return view
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !seen {
		t.Fatalf("job %s never resolved before the deadline; mesh=%+v", id, c.MeshView())
	}
	t.Fatalf("job %s did not reach done: resolved=%s state=%s err=%q mesh=%+v", id, last.ID, last.State, last.Error, c.MeshView())
	return serve.JobView{}
}

// TestMeshByteIdenticalToSingleProcess: the tentpole invariant. Every
// registry exhibit, submitted to a 3-replica mesh, must yield exactly
// the digest and CSV bytes a lone serve.Server yields for the same
// spec.
func TestMeshByteIdenticalToSingleProcess(t *testing.T) {
	single, err := serve.New(serve.Config{Workers: 4, QueueDepth: 64})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	c := newTestMesh(t, Config{Replicas: 3, Serve: serve.Config{Workers: 2, QueueDepth: 64}})

	type pair struct {
		spec             serve.Spec
		meshID, singleID string
	}
	var pairs []pair
	for _, ex := range experiments.Exhibits() {
		spec := serve.Spec{Exhibit: ex.Name, Trials: 2, Patterns: 2, Arrivals: 6}
		mv, err := c.Submit(spec)
		if err != nil {
			t.Fatalf("mesh submit %s: %v", ex.Name, err)
		}
		sv, err := single.Submit(spec)
		if err != nil {
			t.Fatalf("single submit %s: %v", ex.Name, err)
		}
		pairs = append(pairs, pair{spec, mv.ID, sv.ID})
	}
	for _, p := range pairs {
		mView := waitMeshDone(t, c, p.meshID, 60*time.Second)
		deadline := time.Now().Add(60 * time.Second)
		sView, _ := single.Job(p.singleID)
		for sView.State != "done" && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
			sView, _ = single.Job(p.singleID)
		}
		if sView.State != "done" {
			t.Fatalf("%s: single-process job stuck in %s", p.spec.Exhibit, sView.State)
		}
		if mView.Digest != sView.Digest {
			t.Fatalf("%s: mesh digest %s != single-process digest %s", p.spec.Exhibit, mView.Digest, sView.Digest)
		}
		mRes, _, err := c.JobResult(p.meshID)
		if err != nil {
			t.Fatalf("%s: mesh result: %v", p.spec.Exhibit, err)
		}
		sRes, _, err := single.JobResult(p.singleID)
		if err != nil {
			t.Fatalf("%s: single result: %v", p.spec.Exhibit, err)
		}
		if string(mRes.CSV) != string(sRes.CSV) {
			t.Fatalf("%s: mesh CSV bytes differ from single-process CSV", p.spec.Exhibit)
		}
	}
}

// TestMeshFailoverResumesGoldenFig5: kill the replica serving the
// golden fig5 spec mid-execution. The monitor must detect the death,
// hand the checkpoint snapshot to a survivor, re-route the job, and the
// old job id must (via forwarding) finish with the pinned golden
// digest — byte-identity through a failover.
func TestMeshFailoverResumesGoldenFig5(t *testing.T) {
	// The timeout must be generous: under the race detector a busy fig5
	// runner can starve heartbeat tickers for well over 40ms, and a
	// spurious failover of a *survivor* would leave no replica to re-route
	// to. 3s keeps detection fast for the test while staying far above
	// scheduler jitter.
	c := newTestMesh(t, Config{
		Replicas:          3,
		Serve:             serve.Config{Workers: 1},
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  3 * time.Second,
	})
	spec := serve.Spec{Exhibit: "fig5", Patterns: 6} // the golden fig5 spec
	view, err := c.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	idx, gen, ok := parseJobID(view.ID)
	if !ok || gen != 0 {
		t.Fatalf("unparseable mesh job id %q", view.ID)
	}

	// Wait for the serving replica to checkpoint at least one grid cell,
	// then kill it mid-job. The poll is deliberately slack (10ms): under
	// the race detector a hot poll loop slows the runner itself.
	victim := c.replicas[idx].srv
	deadline := time.Now().Add(60 * time.Second)
	for {
		if cells := victim.ExportSnapshots()[spec.Key()]; len(cells) >= 1 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("replica never recorded checkpoint cells")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.Kill(idx); err != nil {
		t.Fatalf("kill: %v", err)
	}

	final := waitMeshDone(t, c, view.ID, 180*time.Second)
	if want := goldenDigest(t, "fig5"); final.Digest != want {
		t.Fatalf("post-failover digest %s != golden %s", final.Digest, want)
	}
	newIdx, _, ok := parseJobID(final.ID)
	if !ok || newIdx == idx {
		t.Fatalf("job finished on %q; expected a surviving replica, not %d", final.ID, idx)
	}

	mv := c.MeshView()
	if mv.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", mv.Failovers)
	}
	if mv.ReroutedJobs < 1 {
		t.Fatalf("rerouted jobs = %d, want >= 1", mv.ReroutedJobs)
	}
	if mv.HandoffCells < 1 {
		t.Fatalf("handoff cells = %d, want >= 1", mv.HandoffCells)
	}
	if c.Alive(idx) {
		t.Fatalf("replica %d still marked alive after failover", idx)
	}

	// Revive the dead slot: fresh generation, prewarmed, serving again.
	// The rerouted job has finished by now (success drops its snapshot),
	// so seed a survivor with a live snapshot to observe the prewarm.
	c.mu.RLock()
	var survivor *serve.Server
	for _, rep := range c.replicas {
		if rep.idx != idx && rep.alive.Load() {
			survivor = rep.srv
			break
		}
	}
	c.mu.RUnlock()
	seed := map[int][]float64{7: {1, 2, 3}}
	if n := survivor.ImportSnapshot("prewarm-seed", seed); n != 1 {
		t.Fatalf("seeding survivor snapshot recorded %d cells, want 1", n)
	}
	if err := c.Revive(idx); err != nil {
		t.Fatalf("revive: %v", err)
	}
	if !c.Alive(idx) {
		t.Fatalf("replica %d not alive after revive", idx)
	}
	c.mu.RLock()
	revGen := c.replicas[idx].gen
	prewarmed := c.replicas[idx].srv.ExportSnapshots()["prewarm-seed"]
	c.mu.RUnlock()
	if revGen != 1 {
		t.Fatalf("revived generation = %d, want 1", revGen)
	}
	if len(prewarmed) != 1 {
		t.Fatalf("revived replica prewarm carried %d cells of the seeded snapshot, want 1", len(prewarmed))
	}
	// The old job id must keep resolving after the revival (the forward
	// points at a survivor, not the revived slot).
	if again, ok := c.Job(view.ID); !ok || again.State != "done" {
		t.Fatalf("old job id stopped resolving after revival: ok=%v state=%s", ok, again.State)
	}
}

// TestMeshAdmissionHTTP: the admission stage surfaces as 429 with a
// Retry-After floor of 1s on the HTTP edge.
func TestMeshAdmissionHTTP(t *testing.T) {
	c := newTestMesh(t, Config{Replicas: 2, Serve: serve.Config{Workers: 1}, Admission: RejectAll()})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"exhibit":"fig1","trials":2}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want >= 1", ra)
	}
}

// TestMeshViewHTTP: GET /v1/mesh reports fleet membership and policy
// names over the wire.
func TestMeshViewHTTP(t *testing.T) {
	c := newTestMesh(t, Config{Replicas: 3, Serve: serve.Config{Workers: 1}})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/mesh")
	if err != nil {
		t.Fatalf("GET /v1/mesh: %v", err)
	}
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode mesh view: %v", err)
	}
	if v.Status != "ok" || len(v.Replicas) != 3 {
		t.Fatalf("mesh view = %+v, want ok status and 3 replicas", v)
	}
	if v.Routing != "affinity" || v.Admission != "always" {
		t.Fatalf("default policies = %s/%s, want affinity/always", v.Routing, v.Admission)
	}
	for _, rv := range v.Replicas {
		if !rv.Alive {
			t.Fatalf("replica %d reported dead in a fresh mesh", rv.Idx)
		}
	}
}

// TestMeshMetricsMerged: GET /metrics interleaves the coordinator's
// exaresil_mesh_* families with every replica's exaresil_serve_*
// families, each replica series tagged replica="<idx>".
func TestMeshMetricsMerged(t *testing.T) {
	c := newTestMesh(t, Config{Replicas: 2, Serve: serve.Config{Workers: 1}, Obs: obs.NewRegistry()})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	view, err := c.Submit(serve.Spec{Exhibit: "fig1", Trials: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitMeshDone(t, c, view.ID, 60*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics body: %v", err)
	}
	body := string(raw)
	for _, want := range []string{
		`exaresil_mesh_admission_total{outcome="admitted"} 1`,
		`exaresil_mesh_routed_total{replica="`,
		`exaresil_mesh_replica_up{replica="0"} 1`,
		`exaresil_serve_jobs_submitted_total{replica="`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("merged /metrics missing %q; got:\n%s", want, body)
		}
	}
}

// TestMeshDrain: after Drain, submissions are refused and every
// replica reports draining.
func TestMeshDrain(t *testing.T) {
	c, err := New(Config{Replicas: 2, Serve: serve.Config{Workers: 1}})
	if err != nil {
		t.Fatalf("mesh.New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := c.Submit(serve.Spec{Exhibit: "fig1", Trials: 2}); err == nil {
		t.Fatal("submit after drain succeeded")
	}
	if mv := c.MeshView(); mv.Status != "draining" {
		t.Fatalf("mesh status = %s, want draining", mv.Status)
	}
}

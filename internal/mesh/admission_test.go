package mesh

import (
	"testing"
	"time"
)

// TestTokenBucketAdmission: burst admits immediately, exhaustion rejects
// with a refill-based retry hint, and elapsed time restores tokens. The
// policy is a pure function of the passed clock, so no sleeping.
func TestTokenBucketAdmission(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := TokenBucket(1, 2) // 1/s, burst 2

	if ok, _ := tb.Admit(now); !ok {
		t.Fatal("first admit within burst rejected")
	}
	if ok, _ := tb.Admit(now); !ok {
		t.Fatal("second admit within burst rejected")
	}
	ok, retry := tb.Admit(now)
	if ok {
		t.Fatal("admit past burst accepted")
	}
	if retry < 900*time.Millisecond || retry > 1100*time.Millisecond {
		t.Fatalf("retry hint %s, want ~1s (one token at 1/s)", retry)
	}
	if ok, _ := tb.Admit(now.Add(1500 * time.Millisecond)); !ok {
		t.Fatal("admit after refill rejected")
	}
}

// TestTokenBucketClampsBadParams: nonsensical rate/burst degrade to a
// minimal working bucket instead of one that admits nothing or panics.
func TestTokenBucketClampsBadParams(t *testing.T) {
	tb := TokenBucket(-3, 0)
	if ok, _ := tb.Admit(time.Unix(0, 0)); !ok {
		t.Fatal("clamped bucket rejected its first submission")
	}
}

// TestFixedPolicies: the two degenerate policies and the flag parser.
func TestFixedPolicies(t *testing.T) {
	if ok, _ := AlwaysAdmit().Admit(time.Now()); !ok {
		t.Fatal("AlwaysAdmit rejected")
	}
	ok, retry := RejectAll().Admit(time.Now())
	if ok {
		t.Fatal("RejectAll admitted")
	}
	if retry < time.Second {
		t.Fatalf("RejectAll retry hint %s below the 1s floor", retry)
	}

	for _, name := range []string{"", "always", "reject-all", "token-bucket"} {
		if _, err := ParseAdmission(name, 5, 10); err != nil {
			t.Fatalf("ParseAdmission(%q): %v", name, err)
		}
	}
	if _, err := ParseAdmission("nope", 5, 10); err == nil {
		t.Fatal("ParseAdmission accepted an unknown policy")
	}
}

package mesh

import (
	"fmt"
	"reflect"
	"testing"
)

func liveSet(idxs ...int) []Candidate {
	out := make([]Candidate, len(idxs))
	for i, idx := range idxs {
		out[i] = Candidate{Idx: idx}
	}
	return out
}

// TestAffinityStabilityAndMinimalRemap: the consistent-hash router gives
// every key a stable owner, returns a full permutation of the live set,
// and a replica's death remaps only the keys that replica owned.
func TestAffinityStabilityAndMinimalRemap(t *testing.T) {
	r := NewAffinityRouter(3)
	all := liveSet(0, 1, 2)
	owner := map[string]int{}
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("spec-key-%d", i)
		ord := r.Order(key, all)
		if len(ord) != 3 {
			t.Fatalf("Order(%q) returned %d candidates, want 3", key, len(ord))
		}
		seen := map[int]bool{}
		for _, idx := range ord {
			seen[idx] = true
		}
		if len(seen) != 3 {
			t.Fatalf("Order(%q) = %v is not a permutation", key, ord)
		}
		if again := r.Order(key, all); !reflect.DeepEqual(again, ord) {
			t.Fatalf("Order(%q) unstable: %v then %v", key, ord, again)
		}
		owner[key] = ord[0]
		counts[ord[0]]++
	}
	// The ring should spread ownership across all replicas.
	for idx := 0; idx < 3; idx++ {
		if counts[idx] == 0 {
			t.Fatalf("replica %d owns no keys: %v", idx, counts)
		}
	}
	// Kill replica 1: keys owned by 0 and 2 must keep their owner.
	survivors := liveSet(0, 2)
	moved := 0
	for key, own := range owner {
		head := r.Order(key, survivors)[0]
		if own == 1 {
			moved++
			continue
		}
		if head != own {
			t.Fatalf("key %q remapped from %d to %d though its owner survived", key, own, head)
		}
	}
	if moved == 0 {
		t.Fatal("replica 1 owned no keys; remap test is vacuous")
	}
}

// TestLeastLoadedOrder: strictly by queued+inflight, ties by index.
func TestLeastLoadedOrder(t *testing.T) {
	r := NewLeastLoadedRouter()
	live := []Candidate{
		{Idx: 0, Queued: 4, Inflight: 1},
		{Idx: 1, Queued: 0, Inflight: 1},
		{Idx: 2, Queued: 1, Inflight: 0},
		{Idx: 3, Queued: 1, Inflight: 0},
	}
	got := r.Order("any", live)
	want := []int{1, 2, 3, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("least-loaded order = %v, want %v", got, want)
	}
}

// TestTwoChoiceOrder: deterministic for a seed, covers every live
// replica, and puts the less loaded of its two samples first.
func TestTwoChoiceOrder(t *testing.T) {
	live := []Candidate{
		{Idx: 0, Queued: 9},
		{Idx: 1, Queued: 0},
		{Idx: 2, Queued: 5},
	}
	a := NewTwoChoiceRouter(7)
	b := NewTwoChoiceRouter(7)
	for i := 0; i < 50; i++ {
		oa := a.Order("k", live)
		ob := b.Order("k", live)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, oa, ob)
		}
		if len(oa) != 3 {
			t.Fatalf("order %v does not cover the live set", oa)
		}
		loadOf := map[int]int{0: 9, 1: 0, 2: 5}
		if loadOf[oa[0]] > loadOf[oa[1]] {
			t.Fatalf("two-choice put the more loaded sample first: %v", oa)
		}
	}
	// Single candidate degenerates sanely.
	if got := a.Order("k", liveSet(2)); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("single-candidate order = %v", got)
	}
}

// TestParseRouter: flag vocabulary.
func TestParseRouter(t *testing.T) {
	for _, name := range []string{"", "affinity", "least-loaded", "random2"} {
		if _, err := ParseRouter(name, 3, 1); err != nil {
			t.Fatalf("ParseRouter(%q): %v", name, err)
		}
	}
	if _, err := ParseRouter("nope", 3, 1); err == nil {
		t.Fatal("ParseRouter accepted an unknown router")
	}
}

// TestParseJobID: the replica-identity codec on job ids.
func TestParseJobID(t *testing.T) {
	cases := []struct {
		id       string
		idx, gen int
		ok       bool
	}{
		{"r0.0-j00000001", 0, 0, true},
		{"r2.13-j00000042", 2, 13, true},
		{"j00000001", 0, 0, false},
		{"r-j00000001", 0, 0, false},
		{"r1.j1", 0, 0, false},
		{"rx.y-j1", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, tc := range cases {
		idx, gen, ok := parseJobID(tc.id)
		if ok != tc.ok || idx != tc.idx || gen != tc.gen {
			t.Fatalf("parseJobID(%q) = (%d,%d,%v), want (%d,%d,%v)", tc.id, idx, gen, ok, tc.idx, tc.gen, tc.ok)
		}
	}
}

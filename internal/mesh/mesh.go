// Package mesh runs N embedded exaserve replicas behind a three-stage
// pipeline — admission (fleet-level backpressure), routing (cache
// affinity, least-loaded, or two-choice), replica (an unmodified
// serve.Server per slot) — and makes replica death survivable:
// heartbeat-driven failure detection re-routes a dead replica's jobs to
// survivors, carrying the dead replica's checkpoint snapshots so
// interrupted grid executions resume instead of restarting. The design
// invariant is byte-identity: a spec served by any replica, through any
// number of failovers, yields exactly the bytes single-process exaserve
// yields. The failure model follows TeaMPI (heartbeats decide death,
// arXiv:2005.12091) and ReStore (in-memory checkpoint handoff,
// arXiv:2203.01107).
package mesh

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exaresil/internal/obs"
	"exaresil/internal/serve"
)

// Config assembles a Coordinator.
type Config struct {
	// Replicas is the fleet width (default 1).
	Replicas int
	// Serve is the per-replica server template. The coordinator overrides
	// JobIDPrefix (replica identity lives in job ids) and Obs (each
	// replica gets its own registry so per-replica gauges don't clobber
	// each other); everything else applies to every replica.
	Serve serve.Config
	// Admission is the fleet-level admission stage (nil = AlwaysAdmit).
	Admission AdmissionPolicy
	// Router orders replicas per spec key (nil = affinity ring).
	Router Router
	// HeartbeatInterval is the replica heartbeat period (default 100ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how stale a replica's last beat may be before
	// the monitor declares it dead (default 5 × HeartbeatInterval).
	HeartbeatTimeout time.Duration
	// Obs receives the coordinator's exaresil_mesh_* families; when set,
	// each replica also gets a private registry and GET /metrics merges
	// all of them with replica labels. Nil disables metrics everywhere.
	Obs *obs.Registry
}

// ErrNoLiveReplicas: every replica is dead or the fleet is empty.
var ErrNoLiveReplicas = errors.New("mesh: no live replicas")

// AdmissionRejectedError: the admission stage refused the submission.
type AdmissionRejectedError struct {
	RetryAfter time.Duration
}

func (e *AdmissionRejectedError) Error() string {
	return fmt.Sprintf("mesh: admission rejected; retry after %s", e.RetryAfter)
}

// replica is one fleet slot. The slot is permanent; the server inside it
// is generational — Revive replaces srv and bumps gen, so job ids (which
// embed idx and gen) from a previous life can never resolve against the
// new server.
type replica struct {
	idx int
	reg *obs.Registry // per-replica metrics registry, stable across lives

	// Guarded by Coordinator.mu.
	gen      int
	srv      *serve.Server
	stopBeat chan struct{}
	stopOnce *sync.Once

	alive    atomic.Bool
	lastBeat atomic.Int64 // unix nanos of the last heartbeat
}

// trackedJob is the coordinator's routing record for one job id.
type trackedJob struct {
	spec serve.Spec
	idx  int
	gen  int
}

// Bounds for the routing/forwarding tables: dropping an old record only
// costs a client one idempotent resubmission (the retrying client
// already handles vanished jobs), so FIFO caps keep the coordinator's
// memory bounded without a lifecycle protocol.
const (
	trackCap   = 8192
	forwardCap = 4096
)

// Coordinator is the mesh: admission and routing in front of the
// replica fleet, plus the membership/failover machinery.
type Coordinator struct {
	cfg Config
	m   *Metrics

	mu       sync.RWMutex // guards each replica's generational fields
	replicas []*replica

	jobMu    sync.Mutex
	jobs     map[string]trackedJob
	jobOrder []string
	forwards map[string]string // old job id → rerouted job id
	fwdOrder []string

	mux      *http.ServeMux
	draining atomic.Bool
	stopAll  chan struct{}
	stopOnce sync.Once

	// Mirrors of the headline counters, readable without a registry.
	failovers    atomic.Uint64
	rerouted     atomic.Uint64
	handoffCells atomic.Uint64
}

// New builds the fleet, starts heartbeats and the failure monitor, and
// returns a ready coordinator.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Admission == nil {
		cfg.Admission = AlwaysAdmit()
	}
	if cfg.Router == nil {
		cfg.Router = NewAffinityRouter(cfg.Replicas)
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 100 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 5 * cfg.HeartbeatInterval
	}
	c := &Coordinator{
		cfg:      cfg,
		m:        NewMetrics(cfg.Obs),
		jobs:     make(map[string]trackedJob),
		forwards: make(map[string]string),
		stopAll:  make(chan struct{}),
	}
	now := time.Now().UnixNano()
	for i := 0; i < cfg.Replicas; i++ {
		var reg *obs.Registry
		if cfg.Obs != nil {
			reg = obs.NewRegistry()
		}
		srv, err := c.buildServer(i, 0, reg)
		if err != nil {
			return nil, fmt.Errorf("mesh: replica %d: %w", i, err)
		}
		rep := &replica{idx: i, reg: reg, gen: 0, srv: srv,
			stopBeat: make(chan struct{}), stopOnce: &sync.Once{}}
		rep.alive.Store(true)
		rep.lastBeat.Store(now)
		c.replicas = append(c.replicas, rep)
		c.m.ReplicaUp(i).Set(1)
		c.m.Routed(i).Add(0) // register the series before traffic
	}
	for _, rep := range c.replicas {
		go c.heartbeat(rep, rep.stopBeat)
	}
	go c.monitor()
	c.routes()
	return c, nil
}

// buildServer instantiates one replica server from the template.
func (c *Coordinator) buildServer(idx, gen int, reg *obs.Registry) (*serve.Server, error) {
	scfg := c.cfg.Serve
	scfg.JobIDPrefix = fmt.Sprintf("r%d.%d-", idx, gen)
	scfg.Obs = reg
	return serve.New(scfg)
}

// Replicas reports the fleet width.
func (c *Coordinator) Replicas() int { return len(c.replicas) }

// Alive reports whether replica idx is currently live.
func (c *Coordinator) Alive(idx int) bool {
	if idx < 0 || idx >= len(c.replicas) {
		return false
	}
	return c.replicas[idx].alive.Load()
}

// heartbeat stamps one replica's liveness every interval until its life
// (or the coordinator) ends. The embedded replica is always reachable,
// so the beat models the network heartbeat a distributed deployment
// would send: killing the replica stops the beats, and death is then
// *detected* by the monitor's staleness check rather than announced.
func (c *Coordinator) heartbeat(rep *replica, stop chan struct{}) {
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-c.stopAll:
			return
		case <-t.C:
			rep.lastBeat.Store(time.Now().UnixNano())
		}
	}
}

// monitor scans for stale heartbeats and fails replicas over.
func (c *Coordinator) monitor() {
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopAll:
			return
		case <-t.C:
		}
		now := time.Now().UnixNano()
		var dead []int
		c.mu.RLock()
		for _, rep := range c.replicas {
			if rep.alive.Load() && now-rep.lastBeat.Load() > int64(c.cfg.HeartbeatTimeout) {
				dead = append(dead, rep.idx)
			}
		}
		c.mu.RUnlock()
		for _, idx := range dead {
			c.failover(idx)
		}
	}
}

// Kill simulates abrupt death of replica idx: its server's work is
// aborted and its heartbeats stop. The monitor notices the missed beats
// and runs the actual failover — exactly the detection path a real
// crash would take. Submissions racing the detection window spill to
// the next routing candidate on their own.
func (c *Coordinator) Kill(idx int) error {
	if idx < 0 || idx >= len(c.replicas) {
		return fmt.Errorf("mesh: no replica %d", idx)
	}
	c.mu.RLock()
	rep := c.replicas[idx]
	srv, once := rep.srv, rep.stopOnce
	c.mu.RUnlock()
	once.Do(func() { close(rep.stopBeat) })
	srv.Kill()
	return nil
}

// failover declares replica idx dead and re-routes everything it owned:
// its checkpoint snapshots are exported and its tracked jobs are
// resubmitted to survivors (importing the matching snapshot first, so
// interrupted grids resume instead of restarting). Old job ids forward
// to the rerouted ones, so polling clients follow along transparently.
func (c *Coordinator) failover(idx int) {
	c.mu.Lock()
	rep := c.replicas[idx]
	if !rep.alive.CompareAndSwap(true, false) {
		c.mu.Unlock()
		return
	}
	deadGen, deadSrv := rep.gen, rep.srv
	once := rep.stopOnce
	c.mu.Unlock()
	once.Do(func() { close(rep.stopBeat) })
	c.failovers.Add(1)
	c.m.Failovers.Inc()
	c.m.ReplicaUp(idx).Set(0)

	// Abort whatever the dead replica was doing (idempotent after Kill)
	// and lift its checkpoint tier out before re-routing.
	deadSrv.Kill()
	snaps := deadSrv.ExportSnapshots()

	type orphan struct {
		id   string
		spec serve.Spec
	}
	var orphans []orphan
	c.jobMu.Lock()
	for id, tj := range c.jobs {
		if tj.idx == idx && tj.gen == deadGen {
			orphans = append(orphans, orphan{id, tj.spec})
			delete(c.jobs, id)
		}
	}
	c.jobMu.Unlock()
	sort.Slice(orphans, func(a, b int) bool { return orphans[a].id < orphans[b].id })

	for _, o := range orphans {
		view, err := c.routeSubmit(o.spec, snaps[o.spec.Key()])
		if err != nil {
			// No survivor would take it; the job 404s and the client's
			// idempotent resubmission path recovers.
			continue
		}
		c.rerouted.Add(1)
		c.m.Rerouted.Inc()
		c.forward(o.id, view.ID)
	}
}

// Revive brings a dead replica back with a fresh generation and a
// ReStore-style prewarm: the union of the survivors' checkpoint
// snapshots is imported before the replica takes traffic, so work
// re-routed *to* it later never restarts from scratch either.
func (c *Coordinator) Revive(idx int) error {
	if idx < 0 || idx >= len(c.replicas) {
		return fmt.Errorf("mesh: no replica %d", idx)
	}
	c.mu.Lock()
	rep := c.replicas[idx]
	if rep.alive.Load() {
		c.mu.Unlock()
		return nil
	}
	gen := rep.gen + 1
	srv, err := c.buildServer(idx, gen, rep.reg)
	if err != nil {
		c.mu.Unlock()
		return fmt.Errorf("mesh: revive replica %d: %w", idx, err)
	}
	rep.gen, rep.srv = gen, srv
	rep.stopBeat = make(chan struct{})
	rep.stopOnce = &sync.Once{}
	rep.lastBeat.Store(time.Now().UnixNano())
	beat := rep.stopBeat
	var peers []*serve.Server
	for _, other := range c.replicas {
		if other.idx != idx && other.alive.Load() {
			peers = append(peers, other.srv)
		}
	}
	c.mu.Unlock()

	for _, peer := range peers {
		for key, cells := range peer.ExportSnapshots() {
			srv.ImportSnapshot(key, cells)
		}
	}
	rep.alive.Store(true)
	go c.heartbeat(rep, beat)
	c.m.Revivals.Inc()
	c.m.ReplicaUp(idx).Set(1)
	return nil
}

// Submit runs the full pipeline: admission, then routing with spill.
func (c *Coordinator) Submit(spec serve.Spec) (serve.JobView, error) {
	if c.draining.Load() {
		return serve.JobView{}, serve.ErrDraining
	}
	if ok, retry := c.cfg.Admission.Admit(time.Now()); !ok {
		c.m.Rejected.Inc()
		return serve.JobView{}, &AdmissionRejectedError{RetryAfter: retry}
	}
	c.m.Admitted.Inc()
	return c.routeSubmit(spec, nil)
}

// routeSubmit tries the router's candidate order until a replica
// accepts. handoff, when non-nil, is a checkpoint snapshot imported into
// each attempted replica before submission (the failover path).
func (c *Coordinator) routeSubmit(spec serve.Spec, handoff map[int][]float64) (serve.JobView, error) {
	cands := c.liveCandidates()
	if len(cands) == 0 {
		c.m.Exhausted.Inc()
		return serve.JobView{}, ErrNoLiveReplicas
	}
	order := c.cfg.Router.Order(spec.Key(), cands)
	lastErr := error(ErrNoLiveReplicas)
	for pos, idx := range order {
		c.mu.RLock()
		rep := c.replicas[idx]
		srv, alive := rep.srv, rep.alive.Load()
		c.mu.RUnlock()
		if !alive {
			continue // died since the candidate snapshot; spill onward
		}
		if len(handoff) > 0 {
			if n := srv.ImportSnapshot(spec.Key(), handoff); n > 0 {
				c.handoffCells.Add(uint64(n))
				c.m.HandoffCells.Add(uint64(n))
			}
		}
		view, err := srv.Submit(spec)
		if err != nil {
			lastErr = err
			continue
		}
		if pos > 0 {
			c.m.Spills.Inc()
		}
		c.m.Routed(idx).Inc()
		if vidx, vgen, ok := parseJobID(view.ID); ok {
			c.track(view.ID, spec, vidx, vgen)
		}
		return view, nil
	}
	c.m.Exhausted.Inc()
	return serve.JobView{}, lastErr
}

// liveCandidates snapshots the live replicas' load signals.
func (c *Coordinator) liveCandidates() []Candidate {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Candidate, 0, len(c.replicas))
	for _, rep := range c.replicas {
		if rep.alive.Load() {
			out = append(out, Candidate{Idx: rep.idx, Queued: rep.srv.Queued(), Inflight: rep.srv.Inflight()})
		}
	}
	return out
}

// track records one routed job, FIFO-bounded.
func (c *Coordinator) track(id string, spec serve.Spec, idx, gen int) {
	c.jobMu.Lock()
	defer c.jobMu.Unlock()
	if _, ok := c.jobs[id]; !ok {
		c.jobOrder = append(c.jobOrder, id)
	}
	c.jobs[id] = trackedJob{spec: spec, idx: idx, gen: gen}
	for len(c.jobOrder) > trackCap {
		delete(c.jobs, c.jobOrder[0])
		c.jobOrder = c.jobOrder[1:]
	}
}

// forward records an old→new job id mapping, FIFO-bounded.
func (c *Coordinator) forward(oldID, newID string) {
	c.jobMu.Lock()
	defer c.jobMu.Unlock()
	if _, ok := c.forwards[oldID]; !ok {
		c.fwdOrder = append(c.fwdOrder, oldID)
	}
	c.forwards[oldID] = newID
	for len(c.fwdOrder) > forwardCap {
		delete(c.forwards, c.fwdOrder[0])
		c.fwdOrder = c.fwdOrder[1:]
	}
}

// parseJobID extracts the replica index and generation from a mesh job
// id ("r<idx>.<gen>-j<seq>").
func parseJobID(id string) (idx, gen int, ok bool) {
	if len(id) < 2 || id[0] != 'r' {
		return 0, 0, false
	}
	rest := id[1:]
	dot := strings.IndexByte(rest, '.')
	dash := strings.IndexByte(rest, '-')
	if dot <= 0 || dash <= dot+1 {
		return 0, 0, false
	}
	idx, err1 := strconv.Atoi(rest[:dot])
	gen, err2 := strconv.Atoi(rest[dot+1 : dash])
	if err1 != nil || err2 != nil || idx < 0 || gen < 0 {
		return 0, 0, false
	}
	return idx, gen, true
}

// resolve follows the forwarding chain for id and returns the final id
// plus the live server owning it. ok is false when the owner is dead, a
// different generation, or unknown — the client treats the resulting
// 404 as "resubmit".
func (c *Coordinator) resolve(id string) (string, *serve.Server, bool) {
	cur := id
	for hop := 0; hop < 16; hop++ {
		c.jobMu.Lock()
		next, ok := c.forwards[cur]
		c.jobMu.Unlock()
		if !ok {
			break
		}
		cur = next
	}
	idx, gen, ok := parseJobID(cur)
	if !ok || idx >= len(c.replicas) {
		return cur, nil, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	rep := c.replicas[idx]
	if !rep.alive.Load() || rep.gen != gen {
		return cur, nil, false
	}
	return cur, rep.srv, true
}

// Job returns the (possibly forwarded) job's view.
func (c *Coordinator) Job(id string) (serve.JobView, bool) {
	cur, srv, ok := c.resolve(id)
	if !ok {
		return serve.JobView{}, false
	}
	return srv.Job(cur)
}

// CancelJob cancels the (possibly forwarded) job.
func (c *Coordinator) CancelJob(id string) (serve.JobView, error) {
	cur, srv, ok := c.resolve(id)
	if !ok {
		return serve.JobView{}, serve.ErrNoSuchJob
	}
	return srv.CancelJob(cur)
}

// JobResult returns the (possibly forwarded) job's result.
func (c *Coordinator) JobResult(id string) (*serve.Result, serve.JobView, error) {
	cur, srv, ok := c.resolve(id)
	if !ok {
		return nil, serve.JobView{}, serve.ErrNoSuchJob
	}
	return srv.JobResult(cur)
}

// RetryAfterSeconds is the fleet-level backoff estimate behind 429s:
// the minimum of the live replicas' estimates (a client should retry
// when *some* replica can take the work), floored at 1s.
func (c *Coordinator) RetryAfterSeconds() int {
	best := 0
	c.mu.RLock()
	for _, rep := range c.replicas {
		if !rep.alive.Load() {
			continue
		}
		if est := rep.srv.RetryAfterSeconds(); best == 0 || est < best {
			best = est
		}
	}
	c.mu.RUnlock()
	if best < 1 {
		best = 1
	}
	return best
}

// Drain closes mesh admission, stops the heartbeat/monitor machinery,
// and drains every live replica (no in-flight job is dropped).
func (c *Coordinator) Drain(ctx context.Context) error {
	c.draining.Store(true)
	c.stopOnce.Do(func() { close(c.stopAll) })
	c.mu.RLock()
	reps := append([]*replica(nil), c.replicas...)
	c.mu.RUnlock()
	var firstErr error
	for _, rep := range reps {
		if !rep.alive.Load() {
			continue
		}
		c.mu.RLock()
		srv := rep.srv
		c.mu.RUnlock()
		if err := srv.Drain(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ReplicaView is one fleet slot in the mesh view.
type ReplicaView struct {
	Idx    int              `json:"idx"`
	Gen    int              `json:"gen"`
	Alive  bool             `json:"alive"`
	Health serve.HealthView `json:"health"`
}

// View is the GET /healthz and GET /v1/mesh body.
type View struct {
	Status       string        `json:"status"`
	Admission    string        `json:"admission"`
	Routing      string        `json:"routing"`
	Failovers    uint64        `json:"failovers"`
	ReroutedJobs uint64        `json:"rerouted_jobs"`
	HandoffCells uint64        `json:"handoff_cells"`
	Replicas     []ReplicaView `json:"replicas"`
}

// MeshView reports fleet membership, policies, and failover totals.
func (c *Coordinator) MeshView() View {
	status := "ok"
	if c.draining.Load() {
		status = "draining"
	}
	v := View{
		Status:       status,
		Admission:    c.cfg.Admission.Name(),
		Routing:      c.cfg.Router.Name(),
		Failovers:    c.failovers.Load(),
		ReroutedJobs: c.rerouted.Load(),
		HandoffCells: c.handoffCells.Load(),
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, rep := range c.replicas {
		rv := ReplicaView{Idx: rep.idx, Gen: rep.gen, Alive: rep.alive.Load()}
		if rv.Alive {
			rv.Health = rep.srv.Health()
		}
		v.Replicas = append(v.Replicas, rv)
	}
	return v
}

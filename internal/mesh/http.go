package mesh

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"exaresil/internal/experiments"
	"exaresil/internal/serve"
)

// The mesh speaks the same /v1 surface as a single exaserve process, so
// serveclient/exasoak work against either unchanged; /healthz and the
// extra GET /v1/mesh expose fleet state instead of single-node state.

// routes mounts the API.
func (c *Coordinator) routes() {
	c.mux = http.NewServeMux()
	c.mux.Handle("POST /v1/jobs", http.HandlerFunc(c.handleSubmit))
	c.mux.Handle("GET /v1/jobs/{id}", http.HandlerFunc(c.handleJob))
	c.mux.Handle("DELETE /v1/jobs/{id}", http.HandlerFunc(c.handleCancel))
	c.mux.Handle("GET /v1/jobs/{id}/result", http.HandlerFunc(c.handleResult))
	c.mux.Handle("GET /v1/jobs/{id}/table", http.HandlerFunc(c.handleTable))
	c.mux.Handle("GET /v1/exhibits", http.HandlerFunc(c.handleExhibits))
	c.mux.Handle("GET /v1/mesh", http.HandlerFunc(c.handleMesh))
	c.mux.Handle("GET /metrics", http.HandlerFunc(c.handleMetrics))
	c.mux.Handle("GET /healthz", http.HandlerFunc(c.handleMesh))
}

// Handler is the mesh's HTTP surface.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit runs the admission → routing → replica pipeline over one
// spec.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := serve.ParseSpec(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	view, err := c.Submit(spec)
	var rejected *AdmissionRejectedError
	switch {
	case errors.As(err, &rejected):
		secs := int(rejected.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1 // same floor as the replicas' Retry-After
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		writeError(w, http.StatusTooManyRequests, "admission rejected (%s policy); retry later", c.cfg.Admission.Name())
		return
	case errors.Is(err, serve.ErrSaturated):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", c.RetryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "every live replica is saturated; retry later")
		return
	case errors.Is(err, serve.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "mesh is draining")
		return
	case errors.Is(err, ErrNoLiveReplicas):
		writeError(w, http.StatusServiceUnavailable, "no live replicas")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+view.ID)
	code := http.StatusAccepted
	if view.Cache == serve.CacheHit {
		code = http.StatusOK
	}
	writeJSON(w, code, view)
}

// handleJob polls one (possibly forwarded) job.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := c.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleCancel terminates one job.
func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := c.CancelJob(r.PathValue("id"))
	var conflict *serve.StateConflictError
	switch {
	case errors.Is(err, serve.ErrNoSuchJob):
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	case errors.As(err, &conflict):
		writeError(w, http.StatusConflict, "job is already %s", conflict.State)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleResult serves a done job's CSV bytes.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	res, view, err := c.JobResult(r.PathValue("id"))
	var conflict *serve.StateConflictError
	switch {
	case errors.Is(err, serve.ErrNoSuchJob):
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	case errors.As(err, &conflict):
		writeError(w, http.StatusConflict, "job is %s, not done", view.State)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("X-Exaresil-Digest", res.Digest)
	_, _ = w.Write(res.CSV)
}

// handleTable serves a done job's rendered ASCII table.
func (c *Coordinator) handleTable(w http.ResponseWriter, r *http.Request) {
	res, view, err := c.JobResult(r.PathValue("id"))
	var conflict *serve.StateConflictError
	switch {
	case errors.Is(err, serve.ErrNoSuchJob):
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	case errors.As(err, &conflict):
		writeError(w, http.StatusConflict, "job is %s, not done", view.State)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprint(w, res.Text)
}

// exhibitInfo is one row of GET /v1/exhibits.
type exhibitInfo struct {
	Name  string `json:"name"`
	Group string `json:"group"`
}

// handleExhibits lists the runnable exhibit names.
func (c *Coordinator) handleExhibits(w http.ResponseWriter, r *http.Request) {
	var out []exhibitInfo
	for _, e := range experiments.Exhibits() {
		out = append(out, exhibitInfo{Name: e.Name, Group: e.Group})
	}
	writeJSON(w, http.StatusOK, struct {
		Exhibits []exhibitInfo `json:"exhibits"`
	}{out})
}

// handleMesh reports fleet membership and failover totals.
func (c *Coordinator) handleMesh(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.MeshView())
}

// handleMetrics merges the coordinator's families with every replica's,
// tagging replica series with replica="<idx>". Dead slots still expose
// their last registry (counters survive replica lives — the registry is
// per-slot, not per-generation).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if c.cfg.Obs == nil {
		writeError(w, http.StatusNotFound, "metrics are disabled (no registry configured)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := c.cfg.Obs.WriteProm(w); err != nil {
		return
	}
	// Replica registries are per-slot and immutable after New (revival
	// reuses them), so no membership lock is needed here.
	for _, rep := range c.replicas {
		if rep.reg == nil {
			continue
		}
		if err := writeReplicaProm(w, rep.idx, rep.reg.Snapshot()); err != nil {
			return
		}
	}
}

package mesh

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Candidate is one live replica's load signal at routing time.
type Candidate struct {
	Idx      int // replica index
	Queued   int // flights waiting in its shard queues
	Inflight int // flights executing on its workers
}

func (c Candidate) load() int { return c.Queued + c.Inflight }

// Router is the mesh's second pipeline stage: given a spec's cache key
// and the live replicas, it returns every candidate's index in
// preference order. The coordinator tries them in order and spills to
// the next on rejection (saturated or draining replica), so a router
// expresses preference, never exclusion.
type Router interface {
	Order(key string, live []Candidate) []int
	// Name labels the router in metrics and health output.
	Name() string
}

// fnv64 is FNV-1a, the same key hash the serve pool shards with.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer. Raw FNV-1a clusters strings that
// differ only in their last character (the final byte sees just one
// multiply, so "vnode-0".."vnode-9" land within a narrow span of the
// 64-bit ring); finalizing restores a uniform spread.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// affinityRouter routes by consistent hashing on the spec key: each
// replica owns vnodes points on a hash ring, and a key's preference
// order is the ring walk from its hash. Identical specs always prefer
// the same replica — so its result cache and checkpoint snapshots see
// every retry of a spec — and a replica's death remaps only the keys it
// owned, not the whole keyspace.
type affinityRouter struct {
	ring []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	idx  int
}

// affinityVnodes is the points-per-replica count; 64 keeps the ring's
// ownership spread within a few percent of uniform for small fleets.
const affinityVnodes = 64

// NewAffinityRouter builds the ring over all replicas (dead ones are
// simply filtered at Order time, so the ring never rebuilds and key
// ownership is stable across failures and revivals).
func NewAffinityRouter(replicas int) Router {
	r := &affinityRouter{ring: make([]ringPoint, 0, replicas*affinityVnodes)}
	for i := 0; i < replicas; i++ {
		for v := 0; v < affinityVnodes; v++ {
			r.ring = append(r.ring, ringPoint{hash: mix64(fnv64(fmt.Sprintf("replica-%d/vnode-%d", i, v))), idx: i})
		}
	}
	sort.Slice(r.ring, func(a, b int) bool { return r.ring[a].hash < r.ring[b].hash })
	return r
}

func (r *affinityRouter) Order(key string, live []Candidate) []int {
	alive := make(map[int]bool, len(live))
	for _, c := range live {
		alive[c.Idx] = true
	}
	h := mix64(fnv64(key))
	start := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	out := make([]int, 0, len(live))
	seen := make(map[int]bool, len(live))
	for i := 0; i < len(r.ring) && len(out) < len(alive); i++ {
		p := r.ring[(start+i)%len(r.ring)]
		if alive[p.idx] && !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}

func (r *affinityRouter) Name() string { return "affinity" }

// leastLoadedRouter orders replicas by queued+inflight load, breaking
// ties by index. Best latency spread, worst cache affinity.
type leastLoadedRouter struct{}

// NewLeastLoadedRouter builds the least-loaded router.
func NewLeastLoadedRouter() Router { return leastLoadedRouter{} }

func (leastLoadedRouter) Order(_ string, live []Candidate) []int {
	cands := append([]Candidate(nil), live...)
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].load() != cands[b].load() {
			return cands[a].load() < cands[b].load()
		}
		return cands[a].Idx < cands[b].Idx
	})
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.Idx
	}
	return out
}

func (leastLoadedRouter) Name() string { return "least-loaded" }

// twoChoiceRouter is power-of-two-choices: sample two distinct replicas
// from a seeded stream, prefer the less loaded, and fall back to the
// rest in index order. Near-least-loaded balance without the herd
// behavior of always picking the global minimum.
type twoChoiceRouter struct {
	mu  sync.Mutex
	rnd *rand.Rand
}

// NewTwoChoiceRouter builds the random-2-choice router from a seed
// (deterministic sampling for reproducible soaks).
func NewTwoChoiceRouter(seed int64) Router {
	return &twoChoiceRouter{rnd: rand.New(rand.NewSource(seed))}
}

func (r *twoChoiceRouter) Order(_ string, live []Candidate) []int {
	n := len(live)
	if n <= 1 {
		return leastLoadedRouter{}.Order("", live)
	}
	r.mu.Lock()
	a := r.rnd.Intn(n)
	b := r.rnd.Intn(n - 1)
	r.mu.Unlock()
	if b >= a {
		b++
	}
	if live[b].load() < live[a].load() {
		a, b = b, a
	}
	out := make([]int, 0, n)
	out = append(out, live[a].Idx, live[b].Idx)
	for _, c := range live {
		if c.Idx != live[a].Idx && c.Idx != live[b].Idx {
			out = append(out, c.Idx)
		}
	}
	return out
}

func (r *twoChoiceRouter) Name() string { return "random2" }

// ParseRouter resolves the -routing flag vocabulary: "affinity"
// (default), "least-loaded", or "random2".
func ParseRouter(name string, replicas int, seed int64) (Router, error) {
	switch name {
	case "", "affinity":
		return NewAffinityRouter(replicas), nil
	case "least-loaded":
		return NewLeastLoadedRouter(), nil
	case "random2":
		return NewTwoChoiceRouter(seed), nil
	default:
		return nil, fmt.Errorf("mesh: unknown router %q (want affinity, least-loaded, or random2)", name)
	}
}

module exaresil

go 1.24

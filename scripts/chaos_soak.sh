#!/usr/bin/env bash
# chaos_soak.sh — end-to-end resilience soak: exaserve with chaos armed,
# exasoak hammering it with retrying clients.
#
# Boots exaserve -chaos on an ephemeral port (seeded latency, synthetic
# 500s, connection resets, and mid-job worker crashes), then runs exasoak,
# which precomputes every spec's expected digest in-process and fails on a
# single wrong or unrecovered result. Afterwards the script checks that
# chaos actually fired (exaresil_chaos_injected_total > 0), that the
# checkpoint machinery engaged when crashes landed, and that SIGTERM still
# drains cleanly under fault injection.
#
# Tunables (environment):
#   SOAK_CLIENTS   concurrent clients       (default 4)
#   SOAK_REQUESTS  requests per client      (default 16)
#   SOAK_MAX_P99   p99 latency budget       (default 0 = report only)
#
# Usage: scripts/chaos_soak.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SOAK_CLIENTS="${SOAK_CLIENTS:-4}"
SOAK_REQUESTS="${SOAK_REQUESTS:-16}"
SOAK_MAX_P99="${SOAK_MAX_P99:-0}"

PORT=$(( (RANDOM % 20000) + 20000 ))
ADDR="127.0.0.1:${PORT}"
LOG=$(mktemp)
SERVE_BIN=$(mktemp -u)
SOAK_BIN=$(mktemp -u)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -f "$LOG" "$SERVE_BIN" "$SOAK_BIN"
}
trap cleanup EXIT

echo "== building exaserve and exasoak"
go build -o "$SERVE_BIN" ./cmd/exaserve
go build -o "$SOAK_BIN" ./cmd/exasoak

echo "== booting chaos-armed exaserve on ${ADDR}"
"$SERVE_BIN" -addr "$ADDR" -workers 2 -chaos \
  -chaos-latency-rate 0.15 -chaos-latency 20ms \
  -chaos-error-rate 0.10 -chaos-reset-rate 0.05 \
  -chaos-crash-rate 0.30 -chaos-crash-cells 3 >"$LOG" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  curl -fsS "http://${ADDR}/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died during boot:"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done
curl -fsS "http://${ADDR}/healthz" >/dev/null || { echo "server never became healthy"; cat "$LOG"; exit 1; }

echo "== soaking: ${SOAK_CLIENTS} clients x ${SOAK_REQUESTS} requests"
"$SOAK_BIN" -addr "http://${ADDR}" -clients "$SOAK_CLIENTS" -requests "$SOAK_REQUESTS" \
  -max-p99 "$SOAK_MAX_P99" || { echo "soak failed; server log:"; cat "$LOG"; exit 1; }

echo "== verifying chaos fired and resilience engaged"
METRICS=$(curl -fsS "http://${ADDR}/metrics")
for series in exaresil_chaos_injected_total exaresil_serve_snapshots \
              exaresil_serve_snapshot_cells_total exaresil_serve_jobs_total; do
  printf '%s' "$METRICS" | grep -q "$series" || { echo "/metrics missing ${series}"; exit 1; }
done
INJECTED=$(printf '%s' "$METRICS" | awk '/^exaresil_chaos_injected_total/ {sum += $NF} END {print sum+0}')
[ "$INJECTED" -gt 0 ] || { echo "chaos never injected a fault (total ${INJECTED})"; exit 1; }
echo "   ${INJECTED} faults injected, zero wrong results"
CRASHES=$(printf '%s' "$METRICS" | awk '/^exaresil_serve_crashes_injected_total/ {print $NF}')
RESUMES=$(printf '%s' "$METRICS" | awk '/^exaresil_serve_snapshot_resumes_total/ {print $NF}')
FAILED=$(printf '%s' "$METRICS" | awk '/^exaresil_serve_jobs_total\{state="failed"\}/ {print $NF}')
echo "   ${CRASHES:-0} crashes scheduled, ${FAILED:-0} jobs failed, ${RESUMES:-0} snapshot resumes"
# A crash scheduled on a cell-less exhibit never fires, so crashes alone
# do not imply resumes — but every failed job here IS a landed crash (no
# timeouts are configured), and its retry must have resumed.
if [ "${FAILED:-0}" -gt 0 ] && [ "${RESUMES:-0}" -eq 0 ]; then
  echo "jobs crashed but nothing resumed from a snapshot"; exit 1
fi

echo "== SIGTERM drain under chaos"
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then echo "server did not drain within 10s"; exit 1; fi
if ! wait "$SERVER_PID"; then echo "server exited non-zero:"; cat "$LOG"; exit 1; fi
SERVER_PID=""
grep -q "drained" "$LOG" || { echo "no drain log line:"; cat "$LOG"; exit 1; }

echo "chaos soak OK"

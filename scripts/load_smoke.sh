#!/usr/bin/env bash
# load_smoke.sh — end-to-end smoke of the exaload workload tools against a
# live exaserve.
#
# Boots exaserve on an ephemeral port, then drives the full exaload
# surface: generate a bursty trace, replay it against the server while
# re-recording the outcomes, run a short open-loop stream from a profile,
# and finish with a small live saturation sweep whose report must parse
# and whose final step must actually stress the server. Separately checks
# that the deterministic in-process sweep is byte-identical across two
# runs — the property the golden loadsweep exhibit pins.
#
# Tunables (environment):
#   LOAD_RATE   live-sweep top rate in req/s  (default 30)
#   LOAD_DUR    seconds per live step         (default 2)
#
# Usage: scripts/load_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

LOAD_RATE="${LOAD_RATE:-30}"
LOAD_DUR="${LOAD_DUR:-2}"

PORT=$(( (RANDOM % 20000) + 20000 ))
ADDR="127.0.0.1:${PORT}"
LOG=$(mktemp)
TRACE=$(mktemp)
RERECORD=$(mktemp)
CSV=$(mktemp)
SERVE_BIN=$(mktemp -u)
LOAD_BIN=$(mktemp -u)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -f "$LOG" "$TRACE" "$RERECORD" "$CSV" "$SERVE_BIN" "$LOAD_BIN"
}
trap cleanup EXIT

echo "== building exaserve and exaload"
go build -o "$SERVE_BIN" ./cmd/exaserve
go build -o "$LOAD_BIN" ./cmd/exaload

echo "== deterministic in-process sweep (twice, must be byte-identical)"
A=$("$LOAD_BIN" sweep -inproc)
B=$("$LOAD_BIN" sweep -inproc)
[ "$A" = "$B" ] || { echo "inproc sweep is not deterministic"; diff <(echo "$A") <(echo "$B") || true; exit 1; }
echo "$A" | grep -q "knee at" || { echo "inproc sweep found no knee:"; echo "$A"; exit 1; }

echo "== booting exaserve on ${ADDR}"
"$SERVE_BIN" -addr "$ADDR" -workers 2 >"$LOG" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  curl -fsS "http://${ADDR}/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died during boot:"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done
curl -fsS "http://${ADDR}/healthz" >/dev/null || { echo "server never became healthy"; cat "$LOG"; exit 1; }

echo "== gen: bursty trace"
"$LOAD_BIN" gen -profile "burst:base=2,peak=10,period=2,duty=0.3,dur=4" -seed 7 -out "$TRACE"
LINES=$(wc -l < "$TRACE")
[ "$LINES" -ge 2 ] || { echo "generated trace has ${LINES} lines, want a header plus events"; exit 1; }

echo "== replay: re-issue the trace live, re-recording outcomes"
"$LOAD_BIN" replay -addr "http://${ADDR}" -trace "$TRACE" -speed 2 -record "$RERECORD"
grep -q '"outcome":"ok"' "$RERECORD" || { echo "re-recorded trace holds no ok outcomes"; cat "$RERECORD"; exit 1; }

echo "== run: short open-loop stream from a profile"
"$LOAD_BIN" run -addr "http://${ADDR}" -profile "constant:rate=8,dur=2" -seed 3

echo "== sweep: live saturation grid up to ${LOAD_RATE} req/s"
OUT=$("$LOAD_BIN" sweep -addr "http://${ADDR}" \
  -rates "2,$((LOAD_RATE / 2)),${LOAD_RATE}" -step-dur "$LOAD_DUR" -seed 5 -csv "$CSV")
echo "$OUT"
echo "$OUT" | grep -q "Saturation sweep" || { echo "live sweep produced no report"; exit 1; }
echo "$OUT" | grep -Eq "knee at|no knee" || { echo "live sweep rendered no knee verdict"; exit 1; }
HEADER=$(head -n 1 "$CSV")
echo "$HEADER" | grep -q "rate_rps" || { echo "report CSV missing its header: ${HEADER}"; exit 1; }
DATA=$(( $(wc -l < "$CSV") - 1 ))
[ "$DATA" -eq 3 ] || { echo "report CSV has ${DATA} data rows, want 3"; exit 1; }

echo "== clean shutdown"
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SERVER_PID" 2>/dev/null && { echo "server ignored SIGTERM"; exit 1; }
SERVER_PID=""

echo "load smoke passed"

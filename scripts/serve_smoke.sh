#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the exaserve HTTP service.
#
# Boots exaserve on an ephemeral port, submits the reduced fig4 spec that
# the golden manifest pins, polls the job to completion, and verifies the
# served CSV byte-for-byte against results/golden/fig4.csv (and its
# sha256 against the manifest). Then proves a resubmission is a cache
# hit, sanity-checks /metrics, and exercises the SIGTERM drain path.
#
# Usage: scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=$(( (RANDOM % 20000) + 20000 ))
ADDR="127.0.0.1:${PORT}"
LOG=$(mktemp)
BIN=$(mktemp -u)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -f "$LOG" "$BIN"
}
trap cleanup EXIT

echo "== building exaserve"
go build -o "$BIN" ./cmd/exaserve

echo "== booting on ${ADDR}"
"$BIN" -addr "$ADDR" -workers 2 >"$LOG" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  curl -fsS "http://${ADDR}/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died during boot:"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done
curl -fsS "http://${ADDR}/healthz" >/dev/null || { echo "server never became healthy"; cat "$LOG"; exit 1; }

echo "== submitting reduced fig4 spec"
SUBMIT=$(curl -fsS -d '{"exhibit":"fig4","patterns":6}' "http://${ADDR}/v1/jobs")
JOB=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$JOB" ] || { echo "no job id in response: $SUBMIT"; exit 1; }
echo "   job $JOB"

echo "== polling to completion"
STATE=""
for _ in $(seq 1 600); do
  VIEW=$(curl -fsS "http://${ADDR}/v1/jobs/${JOB}")
  STATE=$(printf '%s' "$VIEW" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -n 1)
  case "$STATE" in
    done) break ;;
    failed|canceled) echo "job ended ${STATE}: ${VIEW}"; exit 1 ;;
  esac
  sleep 0.2
done
[ "$STATE" = done ] || { echo "job stuck in state '${STATE}'"; exit 1; }

echo "== verifying the served result against the golden fig4 exhibit"
CSV=$(mktemp)
curl -fsS "http://${ADDR}/v1/jobs/${JOB}/result" -o "$CSV"
WANT=$(awk '$2 == "fig4" {print $1}' results/golden/manifest.txt)
GOT=$(sha256sum "$CSV" | awk '{print $1}')
if [ "$GOT" != "$WANT" ]; then
  echo "digest mismatch: served ${GOT}, manifest pins ${WANT}"; rm -f "$CSV"; exit 1
fi
cmp -s "$CSV" results/golden/fig4.csv || { echo "served CSV differs from results/golden/fig4.csv"; rm -f "$CSV"; exit 1; }
rm -f "$CSV"
echo "   sha256 ${GOT} matches the manifest; CSV byte-identical to the golden fixture"

echo "== resubmission must be a cache hit"
HIT=$(curl -fsS -d '{"exhibit":"fig4","patterns":6}' "http://${ADDR}/v1/jobs")
printf '%s' "$HIT" | grep -q '"cache": *"hit"' || { echo "resubmission was not a cache hit: $HIT"; exit 1; }

echo "== /metrics sanity"
METRICS=$(curl -fsS "http://${ADDR}/metrics")
for series in exaresil_serve_jobs_total exaresil_serve_cache_requests_total \
              exaresil_serve_queue_depth exaresil_serve_job_seconds_bucket \
              exaresil_serve_http_requests_total; do
  printf '%s' "$METRICS" | grep -q "$series" || { echo "/metrics missing ${series}"; exit 1; }
done

echo "== SIGTERM drain"
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then echo "server did not drain within 10s"; exit 1; fi
if ! wait "$SERVER_PID"; then echo "server exited non-zero:"; cat "$LOG"; exit 1; fi
SERVER_PID=""
grep -q "drained" "$LOG" || { echo "no drain log line:"; cat "$LOG"; exit 1; }

echo "serve smoke OK"

#!/usr/bin/env bash
# mesh_soak.sh — end-to-end multi-replica resilience soak: a 3-replica
# exaserve mesh with the kill/revive chaos loop armed, exasoak hammering
# it with retrying clients.
#
# Boots exaserve -replicas 3 on an ephemeral port with
# -mesh-kill-interval so replicas keep dying and reviving under load,
# then runs exasoak, which precomputes every spec's expected digest
# in-process and fails on a single wrong or unrecovered result. exasoak's
# -require-failover flag asserts the mesh actually lost (and failed
# over) at least one replica during the soak, so the run cannot pass
# vacuously. Afterwards the script checks the mesh metrics surfaced the
# failovers and that SIGTERM still drains the whole fleet cleanly.
#
# Tunables (environment):
#   SOAK_CLIENTS   concurrent clients       (default 4)
#   SOAK_REQUESTS  requests per client      (default 16)
#   SOAK_MAX_P99   p99 latency budget       (default 0 = report only)
#
# Usage: scripts/mesh_soak.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SOAK_CLIENTS="${SOAK_CLIENTS:-4}"
SOAK_REQUESTS="${SOAK_REQUESTS:-16}"
SOAK_MAX_P99="${SOAK_MAX_P99:-0}"

PORT=$(( (RANDOM % 20000) + 20000 ))
ADDR="127.0.0.1:${PORT}"
LOG=$(mktemp)
SERVE_BIN=$(mktemp -u)
SOAK_BIN=$(mktemp -u)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -f "$LOG" "$SERVE_BIN" "$SOAK_BIN"
}
trap cleanup EXIT

echo "== building exaserve and exasoak"
go build -o "$SERVE_BIN" ./cmd/exaserve
go build -o "$SOAK_BIN" ./cmd/exasoak

echo "== booting a 3-replica mesh with kill/revive chaos on ${ADDR}"
"$SERVE_BIN" -addr "$ADDR" -workers 2 -replicas 3 \
  -heartbeat-interval 25ms -heartbeat-timeout 200ms \
  -mesh-kill-interval 500ms >"$LOG" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  curl -fsS "http://${ADDR}/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died during boot:"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done
curl -fsS "http://${ADDR}/healthz" >/dev/null || { echo "server never became healthy"; cat "$LOG"; exit 1; }

# The kill loop fires on its own clock; make sure at least one replica
# has actually died and failed over before the measured soak, so
# -require-failover asserts something real rather than racing the timer.
echo "== waiting for the first replica failover"
FAILED_OVER=0
for _ in $(seq 1 150); do
  if curl -fsS "http://${ADDR}/v1/mesh" | grep -q '"failovers": *[1-9]'; then
    FAILED_OVER=1; break
  fi
  sleep 0.1
done
[ "$FAILED_OVER" = 1 ] || { echo "no failover within 15s; server log:"; cat "$LOG"; exit 1; }

echo "== soaking: ${SOAK_CLIENTS} clients x ${SOAK_REQUESTS} requests across kill/revive cycles"
"$SOAK_BIN" -addr "http://${ADDR}" -clients "$SOAK_CLIENTS" -requests "$SOAK_REQUESTS" \
  -max-p99 "$SOAK_MAX_P99" -require-failover \
  || { echo "soak failed; server log:"; cat "$LOG"; exit 1; }

echo "== verifying the mesh surfaced its failovers"
METRICS=$(curl -fsS "http://${ADDR}/metrics")
for series in exaresil_mesh_failovers_total exaresil_mesh_revivals_total \
              exaresil_mesh_routed_total exaresil_mesh_replica_up; do
  printf '%s' "$METRICS" | grep -q "$series" || { echo "/metrics missing ${series}"; exit 1; }
done
FAILOVERS=$(printf '%s' "$METRICS" | awk '/^exaresil_mesh_failovers_total/ {print $NF}')
[ "${FAILOVERS:-0}" -gt 0 ] || { echo "mesh metrics report zero failovers"; exit 1; }
MESH=$(curl -fsS "http://${ADDR}/v1/mesh")
echo "   mesh view: ${MESH}"

echo "== SIGTERM drain of the whole fleet"
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then echo "mesh did not drain within 10s"; exit 1; fi
if ! wait "$SERVER_PID"; then echo "server exited non-zero:"; cat "$LOG"; exit 1; fi
SERVER_PID=""
grep -q "drained" "$LOG" || { echo "no drain log line:"; cat "$LOG"; exit 1; }

echo "mesh soak OK"

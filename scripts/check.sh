#!/usr/bin/env bash
# check.sh — the repository's model-conformance gate.
#
# Runs, in order:
#   1. go vet over every package, plus doc hygiene: every internal
#      package carries a package comment, gofmt has nothing to say, and
#      the docs can't drift — every cmd/ tool and internal/ package must
#      be mentioned in README.md or DESIGN.md
#   2. the race detector over the audit harness, the resilience
#      executors, the cluster layer, the obs metrics package, the shared
#      experiments registry, the service stack — serve, chaos injector,
#      retrying client, workload generator — and the hot-path packages
#      of the raw-speed passes: selection, analytic, rng (pins the
#      seed-determinism, metrics-attachment-is-inert,
#      single-flight/backpressure, checkpoint/resume, substream, and
#      disabled-hooks-allocation-free tests under -race)
#   3. a fuzz smoke (10s per target) on the DES scheduler, the multilevel
#      schedule search, the ReStore replica-loss bookkeeping, and the
#      workload pattern reader
#   4. the full conformance sweep (sim vs analytic, runtime invariants,
#      metamorphic properties) over the seven-technique menu, run twice:
#      plain Monte-Carlo and variance-reduced (-vr, antithetic paired) —
#      exits non-zero on any violation
#   5. the golden-exhibit digest comparison against results/golden/
#   6. three live end-to-end passes (set SOAK_REQUESTS=0 to skip all):
#      exaserve -chaos vs the retrying exasoak client
#      (scripts/chaos_soak.sh), a 3-replica mesh with kill/revive chaos,
#      asserting at least one real failover happened
#      (scripts/mesh_soak.sh), and the exaload workload smoke — trace
#      gen/replay, open-loop run, and a small live saturation sweep
#      (scripts/load_smoke.sh), and the autoscaler elasticity soak — a
#      diurnal exaload day against an elastic pool that must grow, shrink
#      back, and lose no jobs (scripts/autoscale_soak.sh)
#   7. opt-in: with BENCH_BASELINE=path/to/BENCH_results.json set, rerun
#      the exhibit benchmarks and fail on any >10% time or allocation
#      regression against that report (cmd/exabench -baseline)
#
# Usage: scripts/check.sh [exacheck flags...]
# e.g.:  scripts/check.sh -quick
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet ./..."
go vet ./...

echo "== doc hygiene: package comments and gofmt"
MISSING=""
for dir in internal/*/; do
  pkg=$(basename "$dir")
  grep -rql "^// Package ${pkg}" "$dir"*.go || MISSING="${MISSING} ${pkg}"
done >/dev/null
[ -z "$MISSING" ] || { echo "internal packages missing a package comment:${MISSING}"; exit 1; }
UNFMT=$(gofmt -l .)
[ -z "$UNFMT" ] || { echo "gofmt wants to rewrite:"; echo "$UNFMT"; exit 1; }

echo "== doc drift: every binary and package appears in README.md or DESIGN.md"
UNDOCUMENTED=""
for dir in cmd/*/ internal/*/; do
  name=$(basename "$dir")
  grep -q "$name" README.md DESIGN.md || UNDOCUMENTED="${UNDOCUMENTED} ${dir%/}"
done
[ -z "$UNDOCUMENTED" ] || { echo "undocumented in README.md/DESIGN.md:${UNDOCUMENTED}"; exit 1; }

echo "== race detector on the audit harness, executors, cluster layer, machine model, metrics, registry, and service stack"
go test -race -count=1 ./internal/check/ ./internal/resilience/ ./internal/cluster/... \
	./internal/machine/ ./internal/obs/... ./internal/experiments/ ./internal/serve/... ./internal/mesh/ ./internal/chaos/ \
	./internal/serveclient/ ./internal/load/ ./internal/selection/ ./internal/analytic/ ./internal/rng/

echo "== fuzz smoke (${FUZZTIME} per target)"
go test ./internal/des/ -run='^$' -fuzz='^FuzzSimulatorPooledEquivalence$' -fuzztime="$FUZZTIME"
go test ./internal/resilience/ -run='^$' -fuzz='^FuzzOptimizeMultilevel$' -fuzztime="$FUZZTIME"
go test ./internal/resilience/ -run='^$' -fuzz='^FuzzReStoreReplicaLoss$' -fuzztime="$FUZZTIME"
go test ./internal/workload/ -run='^$' -fuzz='^FuzzReadPattern$' -fuzztime="$FUZZTIME"

echo "== conformance sweep (plain)"
go run ./cmd/exacheck "$@" sweep

echo "== conformance sweep (variance-reduced)"
go run ./cmd/exacheck "$@" -vr sweep

echo "== golden exhibits"
go run ./cmd/exacheck golden

if [ "${SOAK_REQUESTS:-8}" != "0" ]; then
  echo "== chaos soak"
  SOAK_CLIENTS="${SOAK_CLIENTS:-3}" SOAK_REQUESTS="${SOAK_REQUESTS:-8}" scripts/chaos_soak.sh
  echo "== mesh soak"
  SOAK_CLIENTS="${SOAK_CLIENTS:-3}" SOAK_REQUESTS="${SOAK_REQUESTS:-8}" scripts/mesh_soak.sh
  echo "== load smoke"
  scripts/load_smoke.sh
  echo "== autoscale soak"
  scripts/autoscale_soak.sh
fi

if [ -n "${BENCH_BASELINE:-}" ]; then
  echo "== bench regression gate vs ${BENCH_BASELINE}"
  go run ./cmd/exabench -baseline "$BENCH_BASELINE" -out "$(mktemp)"
fi

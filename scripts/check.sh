#!/usr/bin/env bash
# check.sh — the repository's model-conformance gate.
#
# Runs, in order:
#   1. go vet over every package
#   2. the race detector over the audit harness, the cluster layer, the
#      obs metrics package, the shared experiments registry, and the
#      exaserve service layer (pins the seed-determinism,
#      metrics-attachment-is-inert, and single-flight/backpressure tests
#      under -race)
#   3. a fuzz smoke (10s per target) on the DES scheduler, the multilevel
#      schedule search, and the workload pattern reader
#   4. the full conformance sweep (sim vs analytic, runtime invariants,
#      metamorphic properties) — exits non-zero on any violation
#   5. the golden-exhibit digest comparison against results/golden/
#
# Usage: scripts/check.sh [exacheck flags...]
# e.g.:  scripts/check.sh -quick
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet ./..."
go vet ./...

echo "== race detector on the audit harness, cluster layer, metrics, registry, and service"
go test -race -count=1 ./internal/check/ ./internal/cluster/... ./internal/obs/... \
	./internal/experiments/ ./internal/serve/...

echo "== fuzz smoke (${FUZZTIME} per target)"
go test ./internal/des/ -run='^$' -fuzz='^FuzzSimulatorPooledEquivalence$' -fuzztime="$FUZZTIME"
go test ./internal/resilience/ -run='^$' -fuzz='^FuzzOptimizeMultilevel$' -fuzztime="$FUZZTIME"
go test ./internal/workload/ -run='^$' -fuzz='^FuzzReadPattern$' -fuzztime="$FUZZTIME"

echo "== conformance sweep"
go run ./cmd/exacheck "$@" sweep

echo "== golden exhibits"
go run ./cmd/exacheck golden

#!/usr/bin/env bash
# bench.sh — the repository's performance gate.
#
# Runs, in order:
#   1. go vet over every package
#   2. the tier-1 verification (build + full test suite)
#   3. the race detector over the concurrency-bearing packages
#   4. cmd/exabench, writing BENCH_results.json at the repo root, stamped
#      with the current git commit and a UTC timestamp so every recorded
#      run is attributable; the fig4 vs fig4_metrics pair in that file
#      records the obs-layer overhead (disabled hooks vs an attached
#      registry), and the fig4/fig5 vs fig4_vr/fig5_vr pairs record the
#      variance-reduced modes (DESIGN.md §11)
#
# The script fails loudly if exabench produced no results (an unmatched
# -run filter, or a crash that left a stale file behind).
#
# Usage: scripts/bench.sh [exabench flags...]
# e.g.:  scripts/bench.sh -run fig4
#
# The correctness counterpart is scripts/check.sh (conformance sweep,
# invariant checks, fuzz smoke, golden-exhibit digests).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== tier-1: go build ./... && go test ./..."
go build ./...
go test ./...

echo "== race detector on concurrency-bearing packages"
go test -race -count=1 \
    ./internal/des/ \
    ./internal/resilience/ \
    ./internal/appsim/ \
    ./internal/selection/ \
    ./internal/experiments/ \
    ./internal/cluster/

echo "== exabench -> BENCH_results.json"
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
rm -f BENCH_results.json
go run ./cmd/exabench -out BENCH_results.json -commit "$COMMIT" "$@"
grep -q '"name"' BENCH_results.json 2>/dev/null \
  || { echo "bench.sh: BENCH_results.json has no benchmark results" >&2; exit 1; }

#!/usr/bin/env bash
# autoscale_soak.sh — elasticity proof for the exaserve autoscaler.
#
# Boots exaserve with an elastic 1..6-worker pool and drives it with an
# exaload diurnal profile (quiet -> peak -> quiet) of deliberately heavy
# jobs (-trials makes each vocabulary spec expensive, -zipf-s 0 with a
# large vocabulary keeps requests cache-cold). The pool must track the
# load: scale up during the peak, scale back down to the floor after it,
# and lose zero jobs to shrinking along the way.
#
# Asserted from /metrics:
#   - at least one up and one down decision
#     (exaresil_serve_autoscale_decisions_total)
#   - the worker gauge exceeds the floor at some point during the peak
#   - the pool is back at the floor by the end of the cool-off
#   - exaresil_serve_jobs_total{state="failed"} stays 0
#
# Tunables (environment):
#   SOAK_PEAK    peak arrival rate in req/s       (default 30)
#   SOAK_TRIALS  Monte-Carlo trials per job       (default 60)
#
# Usage: scripts/autoscale_soak.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SOAK_PEAK="${SOAK_PEAK:-30}"
SOAK_TRIALS="${SOAK_TRIALS:-60}"

PORT=$(( (RANDOM % 20000) + 20000 ))
ADDR="127.0.0.1:${PORT}"
LOG=$(mktemp)
SERVE_BIN=$(mktemp -u)
LOAD_BIN=$(mktemp -u)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -f "$LOG" "$SERVE_BIN" "$LOAD_BIN"
}
trap cleanup EXIT

metric() { # metric <regex> -> last numeric field of the first matching line, 0 if absent
  curl -fsS "http://${ADDR}/metrics" | awk "/$1/ {v=\$NF} END {print v+0}"
}

echo "== building exaserve and exaload"
go build -o "$SERVE_BIN" ./cmd/exaserve
go build -o "$LOAD_BIN" ./cmd/exaload

echo "== booting elastic exaserve on ${ADDR} (1..6 workers)"
"$SERVE_BIN" -addr "$ADDR" -workers 1 \
  -autoscale -min-workers 1 -max-workers 6 \
  -autoscale-interval 250ms -autoscale-cooldown 500ms \
  -cache 8192 -store 8192 >"$LOG" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  curl -fsS "http://${ADDR}/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died during boot:"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done
curl -fsS "http://${ADDR}/healthz" | grep -q '"autoscale": *true' \
  || { echo "health endpoint does not advertise the autoscaler"; exit 1; }

START_WORKERS=$(metric 'exaresil_serve_autoscale_workers')
[ "$START_WORKERS" -eq 1 ] || { echo "pool starts at ${START_WORKERS} workers, want the floor (1)"; exit 1; }

echo "== driving a diurnal day: quiet -> ${SOAK_PEAK}/s peak -> quiet"
"$LOAD_BIN" run -addr "http://${ADDR}" \
  -profile "diurnal:base=2,peak=${SOAK_PEAK},period=20,dur=20" \
  -trials "$SOAK_TRIALS" -vocab 4096 -zipf-s 0 -seed 11 &
LOAD_PID=$!

PEAK_WORKERS=1
while kill -0 "$LOAD_PID" 2>/dev/null; do
  W=$(metric 'exaresil_serve_autoscale_workers')
  [ "$W" -gt "$PEAK_WORKERS" ] && PEAK_WORKERS=$W
  sleep 0.25
done
wait "$LOAD_PID"

echo "== cooling off until the pool returns to the floor"
FINAL_WORKERS=$PEAK_WORKERS
for _ in $(seq 1 120); do
  FINAL_WORKERS=$(metric 'exaresil_serve_autoscale_workers')
  [ "$FINAL_WORKERS" -eq 1 ] && break
  sleep 0.25
done

UPS=$(metric 'exaresil_serve_autoscale_decisions_total\{direction="up"\}')
DOWNS=$(metric 'exaresil_serve_autoscale_decisions_total\{direction="down"\}')
FAILED=$(metric 'exaresil_serve_jobs_total\{state="failed"\}')
DONE=$(metric 'exaresil_serve_jobs_total\{state="done"\}')
echo "   peak workers ${PEAK_WORKERS}, final ${FINAL_WORKERS}; ${UPS} up / ${DOWNS} down decisions; ${DONE} done, ${FAILED} failed"

[ "$PEAK_WORKERS" -gt 1 ] || { echo "pool never grew past the floor under peak load"; cat "$LOG"; exit 1; }
[ "$UPS" -ge 1 ] || { echo "no scale-up decisions recorded"; exit 1; }
[ "$DOWNS" -ge 1 ] || { echo "no scale-down decisions recorded"; exit 1; }
[ "$FINAL_WORKERS" -eq 1 ] || { echo "pool stuck at ${FINAL_WORKERS} workers after the load ended"; exit 1; }
[ "$FAILED" -eq 0 ] || { echo "${FAILED} jobs failed — shrink must never kill work"; exit 1; }
[ "$DONE" -ge 1 ] || { echo "no jobs completed at all"; exit 1; }

echo "== clean shutdown"
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SERVER_PID" 2>/dev/null && { echo "server ignored SIGTERM"; exit 1; }
SERVER_PID=""

echo "autoscale soak passed"

// Quickstart: simulate one application's execution under each resilience
// technique on the projected exascale machine and print what happened.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"exaresil"
)

func main() {
	// A simulation bundles the machine, the failure model, and technique
	// parameters. The default is the paper's 120,000-node exascale
	// machine with a ten-year component MTBF.
	sim, err := exaresil.New()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sim.Machine())

	// Describe an application: class C64 communicates half of every time
	// step and checkpoints 64 GB per node; 1440 one-minute steps is one
	// day of work; 30,000 nodes is a quarter of the machine.
	app := exaresil.App{
		Class:     exaresil.ClassC64,
		TimeSteps: 1440,
		Nodes:     30000,
	}
	fmt.Printf("application: %v\n\n", app)

	// Simulate one execution under each technique with the same seed and
	// print the outcome: makespan, efficiency, and event counts.
	for _, tech := range exaresil.Techniques() {
		res, err := sim.RunApp(tech, app, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	}

	// Single runs are noisy; a study averages many independent trials.
	stats, err := sim.Study(exaresil.MultilevelCheckpoint, app, 100, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmultilevel checkpoint over 100 trials: efficiency %.3f ± %.3f, %.1f failures/run\n",
		stats.Efficiency.Mean, stats.Efficiency.StdDev, stats.Failures.Mean)
}

// Scaling: reproduce the shape of the paper's Figures 1-2 for any
// application class — resilience-technique efficiency as the application
// grows from one percent of the exascale machine to all of it.
//
// Run with:
//
//	go run ./examples/scaling            # class D64, as in Figure 2
//	go run ./examples/scaling -class A32 # as in Figure 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"exaresil"
)

func main() {
	className := flag.String("class", "D64", "application class (A32..D64)")
	trials := flag.Int("trials", 50, "Monte-Carlo trials per point")
	flag.Parse()

	var class exaresil.AppClass
	found := false
	for _, c := range exaresil.Classes() {
		if c.Name == *className {
			class, found = c, true
		}
	}
	if !found {
		log.Fatalf("unknown class %q", *className)
	}

	sim, err := exaresil.New()
	if err != nil {
		log.Fatal(err)
	}
	machine := sim.Machine()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "size\tnodes")
	for _, tech := range exaresil.Techniques() {
		fmt.Fprintf(w, "\t%v", tech)
	}
	fmt.Fprintln(w)

	for _, frac := range []float64{0.01, 0.05, 0.10, 0.25, 0.50, 1.00} {
		app := exaresil.App{
			Class:     class,
			TimeSteps: 1440,
			Nodes:     machine.NodesForFraction(frac),
		}
		fmt.Fprintf(w, "%g%%\t%d", 100*frac, app.Nodes)
		for _, tech := range exaresil.Techniques() {
			stats, err := sim.Study(tech, app, *trials, 7)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "\t%.3f±%.3f", stats.Efficiency.Mean, stats.Efficiency.StdDev)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nefficiency = baseline time / actual time; 0.000 means the technique cannot run at that size\n")
	fmt.Printf("(class %s: %.0f%% communication, %v per node; %d trials per point)\n",
		class.Name, 100*class.CommFraction, class.MemoryPerNode, *trials)
}

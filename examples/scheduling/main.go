// Scheduling: simulate an oversubscribed exascale machine serving an
// arrival pattern of applications with deadlines, comparing the three
// resource-management heuristics under each resilience technique — the
// setting of the paper's Figure 4.
//
// Run with:
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"exaresil"
)

func main() {
	sim, err := exaresil.New()
	if err != nil {
		log.Fatal(err)
	}

	// Generate one arrival pattern: the machine starts full, then 100
	// applications of mixed class, size (1-50% of the machine), and
	// duration (6-48 h) arrive every two hours on average, each with a
	// deadline 1.2-2.0x its baseline execution time.
	pattern := sim.GeneratePattern(exaresil.PatternSpec{
		Arrivals:   100,
		FillSystem: true,
	}, 11)
	fmt.Printf("pattern: %d applications (%d filling the machine at t=0)\n\n",
		len(pattern.Apps), pattern.InitialFill)

	techniques := []exaresil.Technique{
		exaresil.Ideal,
		exaresil.CheckpointRestart,
		exaresil.MultilevelCheckpoint,
		exaresil.ParallelRecovery,
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "scheduler")
	for _, tech := range techniques {
		fmt.Fprintf(w, "\t%v", tech)
	}
	fmt.Fprintln(w, "\t(dropped applications)")

	for _, sch := range exaresil.Schedulers() {
		fmt.Fprintf(w, "%v", sch)
		for _, tech := range techniques {
			m, err := sim.RunCluster(sch, tech, pattern, 11)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "\t%.1f%%", m.DroppedPct())
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// Drill into one combination.
	m, err := sim.RunCluster(exaresil.SlackBased, exaresil.ParallelRecovery, pattern, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslack-based + parallel recovery in detail:\n")
	fmt.Printf("  completed %d / %d applications (dropped %d queued, %d past deadline)\n",
		m.Completed, m.Total, m.DroppedQueued, m.DroppedRunning)
	fmt.Printf("  mean queueing delay %v; mean efficiency of completed runs %.3f\n",
		m.MeanWait, m.MeanEfficiency)
	fmt.Printf("  peak machine utilization %.1f%%; last departure at %v\n",
		100*m.PeakUtilization, m.MakespanEnd)
}

// Energy: account for the energy each resilience technique consumes — the
// dimension of the authors' companion study, and the paper's argument for
// message logging ("the rest of the system can remain idle" during
// recovery).
//
// Run with:
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"exaresil"
)

func main() {
	sim, err := exaresil.New()
	if err != nil {
		log.Fatal(err)
	}
	power := exaresil.DefaultPowerModel()
	fmt.Printf("node power model: %.0fW compute / %.0fW I/O / %.0fW idle\n\n",
		float64(power.Compute), float64(power.IO), float64(power.Idle))

	app := exaresil.App{
		Class:     exaresil.ClassA32, // communication-free: PR's best case
		TimeSteps: 1440,
		Nodes:     30000,
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "technique\ttotal energy\tcompute\trework\tcheckpoint\trestart\toverhead")
	const trials = 25
	for _, tech := range []exaresil.Technique{
		exaresil.CheckpointRestart,
		exaresil.MultilevelCheckpoint,
		exaresil.ParallelRecovery,
	} {
		x, err := sim.Executor(tech, app)
		if err != nil {
			log.Fatal(err)
		}
		// Average the breakdown over several runs.
		var total, compute, rework, ckpt, restart, overhead float64
		for seed := uint64(0); seed < trials; seed++ {
			res, err := sim.RunApp(tech, app, seed)
			if err != nil {
				log.Fatal(err)
			}
			b, err := sim.EnergyOf(res, x.PhysicalNodes(), power)
			if err != nil {
				log.Fatal(err)
			}
			total += b.Total.MWh() / trials
			compute += b.Compute.MWh() / trials
			rework += b.Rework.MWh() / trials
			ckpt += b.Checkpoint.MWh() / trials
			restart += b.Restart.MWh() / trials
			overhead += b.Overhead() / trials
		}
		fmt.Fprintf(w, "%v\t%.1fMWh\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f%%\n",
			tech, total, compute, rework, ckpt, restart, 100*overhead)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	ideal := float64(30000) * float64(power.Compute) * app.Baseline().Seconds() / 3.6e9
	fmt.Printf("\nideal (failure- and overhead-free) energy: %.1f MWh\n", ideal)
	fmt.Println("parallel recovery idles the machine during rework, so its overhead stays lowest")
}

// Selection: build a Resilience Selection policy (the paper's Section VII)
// by probing every application class and size, print the resulting policy
// table, and show the policy beating fixed Parallel Recovery on a
// high-communication arrival pattern.
//
// Run with:
//
//	go run ./examples/selection
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"exaresil"
)

func main() {
	sim, err := exaresil.New()
	if err != nil {
		log.Fatal(err)
	}

	// Probe the (class x size) grid. Heavier options sharpen the policy;
	// these keep the example quick.
	selector, err := sim.BuildSelector(exaresil.SelectorOptions{
		Trials:        12,
		SizeFractions: []float64{0.01, 0.03, 0.12, 0.25, 0.50},
		Seed:          5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Print the learned policy: which technique wins each cell.
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "class\tsize\tbest technique")
	for _, choice := range selector.Choices() {
		fmt.Fprintf(w, "%s\t%g%%\t%v\n", choice.Class.Name, 100*choice.Fraction, choice.Best)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// Compare fixed Parallel Recovery against the policy on
	// high-communication arrival patterns (where the paper finds
	// selection helps most), averaged over several patterns.
	const patterns = 10
	var fixed, selected float64
	for seed := uint64(0); seed < patterns; seed++ {
		pattern := sim.GeneratePattern(exaresil.PatternSpec{
			Arrivals:   100,
			Bias:       exaresil.HighCommBias,
			FillSystem: true,
		}, seed)
		mf, err := sim.RunCluster(exaresil.SlackBased, exaresil.ParallelRecovery, pattern, seed)
		if err != nil {
			log.Fatal(err)
		}
		ms, err := sim.RunClusterWithSelector(exaresil.SlackBased, selector, pattern, seed)
		if err != nil {
			log.Fatal(err)
		}
		fixed += mf.DroppedPct() / patterns
		selected += ms.DroppedPct() / patterns
	}
	fmt.Printf("\nhigh-communication patterns, slack-based scheduling (%d patterns):\n", patterns)
	fmt.Printf("  fixed Parallel Recovery: %.1f%% dropped\n", fixed)
	fmt.Printf("  Resilience Selection:    %.1f%% dropped\n", selected)
}

package exaresil

import (
	"testing"

	"exaresil/internal/core"
	"exaresil/internal/units"
)

func TestNewDefaults(t *testing.T) {
	sim, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if sim.Machine().Nodes != 120000 {
		t.Errorf("default machine has %d nodes, want 120000", sim.Machine().Nodes)
	}
}

func TestNewOptions(t *testing.T) {
	sim, err := New(
		WithMachine(SunwayTaihuLight()),
		WithMTBF(5*units.Year),
		WithRecoverySpeedup(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Machine().Nodes != 40960 {
		t.Errorf("machine option ignored: %d nodes", sim.Machine().Nodes)
	}
	if sim.Machine().MTBF != 5*units.Year {
		t.Errorf("MTBF option ignored: %v", sim.Machine().MTBF)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(WithMachine(Machine{})); err == nil {
		t.Error("invalid machine accepted")
	}
	if _, err := New(WithRecoverySpeedup(0)); err == nil {
		t.Error("invalid recovery speedup accepted")
	}
	if _, err := New(WithSeverityPMF(SeverityPMF{})); err == nil {
		t.Error("zero severity PMF accepted")
	}
}

func TestRunAppQuickstartPath(t *testing.T) {
	sim, err := New()
	if err != nil {
		t.Fatal(err)
	}
	app := App{Class: ClassC64, TimeSteps: 720, Nodes: 12000}
	res, err := sim.RunApp(MultilevelCheckpoint, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("quickstart run did not complete: %v", res)
	}
	if eff := res.Efficiency(); eff <= 0.5 || eff > 1 {
		t.Errorf("efficiency %v implausible for a 10%% app", eff)
	}
}

func TestStudy(t *testing.T) {
	sim, err := New()
	if err != nil {
		t.Fatal(err)
	}
	app := App{Class: ClassA32, TimeSteps: 360, Nodes: 1200}
	st, err := sim.Study(ParallelRecovery, app, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Efficiency.N != 16 {
		t.Errorf("study ran %d trials, want 16", st.Efficiency.N)
	}
	if _, err := sim.Study(ParallelRecovery, app, 0, 2); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := sim.Study(Technique(99), app, 4, 2); err == nil {
		t.Error("unknown technique accepted")
	}
}

func TestClusterPath(t *testing.T) {
	sim, err := New()
	if err != nil {
		t.Fatal(err)
	}
	pattern := sim.GeneratePattern(PatternSpec{Arrivals: 15, FillSystem: true}, 3)
	m, err := sim.RunCluster(SlackBased, ParallelRecovery, pattern, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total != len(pattern.Apps) {
		t.Errorf("cluster resolved %d apps, pattern has %d", m.Total, len(pattern.Apps))
	}
}

func TestSelectorPath(t *testing.T) {
	sim, err := New()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := sim.BuildSelector(SelectorOptions{
		Trials:        4,
		TimeSteps:     360,
		SizeFractions: []float64{0.01, 0.25},
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pattern := sim.GeneratePattern(PatternSpec{Arrivals: 10}, 4)
	m, err := sim.RunClusterWithSelector(SlackBased, sel, pattern, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total != 10 {
		t.Errorf("selector cluster resolved %d apps, want 10", m.Total)
	}
	if _, err := sim.RunClusterWithSelector(SlackBased, nil, pattern, 4); err == nil {
		t.Error("nil selector accepted")
	}
}

func TestEnumerationsExported(t *testing.T) {
	if len(Classes()) != 8 {
		t.Error("Classes() should list 8 Table I classes")
	}
	if len(Techniques()) != 7 {
		t.Error("Techniques() should list 7 technique variants")
	}
	if InMemoryReplicatedCheckpoint != core.InMemoryReplicatedCheckpoint ||
		LightweightReplication != core.LightweightReplication {
		t.Error("post-2017 technique aliases should match core")
	}
	if len(Schedulers()) != 3 {
		t.Error("Schedulers() should list 3 heuristics")
	}
}

func TestExtensionFacade(t *testing.T) {
	sim, err := New(WithWeibullFailures(0.8))
	if err != nil {
		t.Fatal(err)
	}
	app := App{Class: ClassC64, TimeSteps: 360, Nodes: 12000}

	// Analytic prediction agrees in rough magnitude with a short study.
	predicted, err := sim.PredictEfficiency(MultilevelCheckpoint, app)
	if err != nil {
		t.Fatal(err)
	}
	if predicted <= 0.5 || predicted > 1 {
		t.Errorf("predicted efficiency %v implausible", predicted)
	}

	// Energy accounting through the facade.
	x, err := sim.Executor(CheckpointRestart, app)
	if err != nil {
		t.Fatal(err)
	}
	rec := &TraceRecorder{}
	if !ObserveExecutor(x, rec.Observe) {
		t.Error("CR executor should support observation")
	}
	res, err := sim.RunApp(CheckpointRestart, app, 5)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := sim.EnergyOf(res, x.PhysicalNodes(), DefaultPowerModel())
	if err != nil {
		t.Fatal(err)
	}
	if eb.Total <= 0 {
		t.Error("non-positive energy")
	}

	// Backfill scheduler through the facade.
	pattern := sim.GeneratePattern(PatternSpec{Arrivals: 10, FillSystem: true}, 6)
	if _, err := sim.RunCluster(EASYBackfill, ParallelRecovery, pattern, 6); err != nil {
		t.Fatal(err)
	}
	if len(AllSchedulers()) != 4 {
		t.Error("AllSchedulers should include the backfill extension")
	}

	// Analytic selector drives a cluster run.
	sel, err := sim.BuildAnalyticSelector(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunClusterWithChooser(SlackBased, sel.Choose, pattern, 6); err != nil {
		t.Fatal(err)
	}
}

func TestWeibullOptionValidation(t *testing.T) {
	if _, err := New(WithWeibullFailures(0)); err == nil {
		t.Error("zero Weibull shape accepted")
	}
}

package exaresil

import (
	"exaresil/internal/analytic"
	"exaresil/internal/cluster"
	"exaresil/internal/core"
	"exaresil/internal/energy"
	"exaresil/internal/resilience"
	"exaresil/internal/trace"
	"exaresil/internal/workload"
)

// This file exposes the repository's extensions beyond the paper's own
// studies: energy accounting, analytic (closed-form) efficiency models,
// execution tracing, and the EASY-backfill scheduler.

// EASYBackfill is FCFS with EASY backfilling, a scheduler extension beyond
// the paper's three heuristics.
const EASYBackfill = core.EASYBackfill

// AllSchedulers lists every heuristic including the backfill extension.
func AllSchedulers() []Scheduler { return core.AllSchedulers() }

// Energy accounting types.
type (
	// PowerModel is the per-node power draw in each execution state.
	PowerModel = energy.PowerModel
	// EnergyBreakdown decomposes one execution's energy by phase.
	EnergyBreakdown = energy.Breakdown
	// Joules is electrical energy.
	Joules = energy.Joules
)

// DefaultPowerModel returns the projected exascale node power model.
func DefaultPowerModel() PowerModel { return energy.Default() }

// EnergyOf computes the energy breakdown of a simulated execution that
// occupied physicalNodes machine nodes (Executor.PhysicalNodes), under the
// given power model.
func (s *Simulation) EnergyOf(res Result, physicalNodes int, pm PowerModel) (EnergyBreakdown, error) {
	return energy.Account(res, physicalNodes, s.resCfg.RecoverySpeedup, pm)
}

// PredictEfficiency reports the closed-form first-order expected efficiency
// of running app under technique t — the analytic counterpart of Study,
// validated against the simulator in internal/analytic's tests.
func (s *Simulation) PredictEfficiency(t Technique, app App) (float64, error) {
	return analytic.Efficiency(t, app, s.machine, s.model, s.resCfg)
}

// AnalyticSelector is a Resilience Selection policy computed from the
// closed-form models: thousands of times faster to build than the
// Monte-Carlo Selector, at the cost of first-order accuracy.
type AnalyticSelector = analytic.Selector

// BuildAnalyticSelector returns the closed-form selection policy over the
// given candidate techniques (nil means Checkpoint Restart, Multilevel,
// and Parallel Recovery).
func (s *Simulation) BuildAnalyticSelector(candidates []Technique) (*AnalyticSelector, error) {
	return analytic.NewSelector(candidates, s.machine, s.model, s.resCfg)
}

// RunClusterWithChooser is RunCluster with an arbitrary per-application
// technique policy; both selector kinds' Choose methods satisfy it.
func (s *Simulation) RunClusterWithChooser(sch Scheduler, choose func(App) Technique, pattern Pattern, seed uint64) (ClusterMetrics, error) {
	return cluster.Run(cluster.Spec{
		Machine:    s.machine,
		Model:      s.model,
		Scheduler:  sch,
		Chooser:    cluster.TechniqueChooser(choose),
		Resilience: s.resCfg,
		Pattern:    pattern,
		Seed:       seed,
	})
}

// Execution tracing types.
type (
	// TraceEvent is one observed state transition of a simulated run.
	TraceEvent = resilience.TraceEvent
	// TraceRecorder accumulates trace events; attach with ObserveExecutor.
	TraceRecorder = trace.Recorder
	// TraceSummary aggregates a recorded trace.
	TraceSummary = trace.Summary
)

// ObserveExecutor attaches an observer to an executor's future runs,
// reporting whether the executor supports observation (the Ideal baseline
// does not — it has no events).
func ObserveExecutor(x Executor, obs func(TraceEvent)) bool {
	return resilience.Observe(x, obs)
}

// WithSemiBlockingCheckpoints is a Simulation option enabling the
// semi-blocking checkpoint extension: applications keep computing at the
// given rate (in [0, 1)) while checkpoints are written, instead of the
// paper's fully blocking model.
func WithSemiBlockingCheckpoints(rate float64) Option {
	return func(o *simOptions) { o.resCfg.CheckpointComputeRate = rate }
}

// WithWeibullFailures is a Simulation option selecting Weibull-distributed
// failure inter-arrival times of the given shape at the machine's MTBF
// (shape 1 is the paper's Poisson assumption; smaller shapes are
// burstier).
func WithWeibullFailures(shape float64) Option {
	return func(o *simOptions) { o.weibullShape = shape }
}

// chooserFromWorkload adapts the internal chooser type for documentation
// examples; kept unexported and referenced to pin the type identity.
var _ cluster.TechniqueChooser = func(workload.App) core.Technique { return core.ParallelRecovery }
